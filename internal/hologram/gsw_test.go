package hologram

import (
	"math"
	"testing"
)

func smallParams(iters int) Params {
	p := DefaultParams()
	p.Width, p.Height = 64, 64
	p.Iterations = iters
	return p
}

func TestGenerateSingleSpotHighAmplitude(t *testing.T) {
	p := smallParams(3)
	res := Generate(p, []Spot{{X: 1e-4, Y: 0, Z: 0, Intensity: 1}})
	// A single spot should converge to near-perfect focus (|V| → 1).
	if res.SpotAmplitude[0] < 0.95 {
		t.Errorf("single-spot amplitude %v", res.SpotAmplitude[0])
	}
	if res.Uniformity != 1 {
		t.Errorf("single-spot uniformity %v", res.Uniformity)
	}
}

func TestGSWImprovesUniformity(t *testing.T) {
	p := smallParams(1)
	spots := SpotsFromDepthPlanes(2, 4, 6e-4, 0.02)
	one := Generate(p, spots)
	p.Iterations = 8
	many := Generate(p, spots)
	if many.Uniformity <= one.Uniformity {
		t.Errorf("uniformity did not improve: %v -> %v", one.Uniformity, many.Uniformity)
	}
	if many.Uniformity < 0.8 {
		t.Errorf("converged uniformity %v too low", many.Uniformity)
	}
}

func TestPhaseRange(t *testing.T) {
	p := smallParams(4)
	res := Generate(p, SpotsFromDepthPlanes(1, 3, 5e-4, 0))
	for i, ph := range res.Phase {
		if ph < -math.Pi-1e-9 || ph > math.Pi+1e-9 {
			t.Fatalf("phase[%d] = %v out of range", i, ph)
		}
	}
}

func TestStatsCountOps(t *testing.T) {
	p := smallParams(2)
	spots := SpotsFromDepthPlanes(1, 2, 5e-4, 0)
	res := Generate(p, spots)
	n := p.Width * p.Height
	m := len(spots)
	// per iteration: forward m·n + backward n·m; plus final forward m·n
	want := p.Iterations*(2*m*n) + m*n
	if res.Stats.PixelSpotOps != want {
		t.Errorf("ops = %d, want %d", res.Stats.PixelSpotOps, want)
	}
	if res.Stats.Iterations != 2 {
		t.Errorf("iterations = %d", res.Stats.Iterations)
	}
}

func TestEmptyInputs(t *testing.T) {
	p := smallParams(2)
	res := Generate(p, nil)
	if len(res.SpotAmplitude) != 0 || res.Efficiency != 0 {
		t.Error("empty spots should be a no-op")
	}
}

func TestSpotsFromDepthPlanesLayout(t *testing.T) {
	spots := SpotsFromDepthPlanes(3, 4, 1e-3, 0.05)
	if len(spots) != 12 {
		t.Fatalf("%d spots", len(spots))
	}
	// depths span ±depthExtent/2
	minZ, maxZ := math.Inf(1), math.Inf(-1)
	for _, s := range spots {
		minZ = math.Min(minZ, s.Z)
		maxZ = math.Max(maxZ, s.Z)
	}
	if math.Abs(minZ+0.025) > 1e-9 || math.Abs(maxZ-0.025) > 1e-9 {
		t.Errorf("depth range [%v, %v]", minZ, maxZ)
	}
	if len(SpotsFromDepthPlanes(0, 5, 1, 1)) != 0 {
		t.Error("zero planes should yield no spots")
	}
}

func TestDeterminism(t *testing.T) {
	p := smallParams(3)
	spots := SpotsFromDepthPlanes(2, 3, 5e-4, 0.01)
	a := Generate(p, spots)
	b := Generate(p, spots)
	for i := range a.Phase {
		if a.Phase[i] != b.Phase[i] {
			t.Fatal("hologram not deterministic")
		}
	}
}

func TestWeightingBoostsDimSpot(t *testing.T) {
	// Give one spot a much larger desired intensity; after convergence its
	// amplitude must exceed the others'.
	p := smallParams(8)
	spots := []Spot{
		{X: 2e-4, Y: 0, Intensity: 1},
		{X: -2e-4, Y: 0, Intensity: 1},
		{X: 0, Y: 2e-4, Intensity: 1},
	}
	res := Generate(p, spots)
	// equal intensities → roughly equal amplitudes
	mean := (res.SpotAmplitude[0] + res.SpotAmplitude[1] + res.SpotAmplitude[2]) / 3
	for i, a := range res.SpotAmplitude {
		if math.Abs(a-mean)/mean > 0.1 {
			t.Errorf("spot %d amplitude %v deviates from mean %v", i, a, mean)
		}
	}
}
