package hologram

import (
	"math"
	"testing"

	"illixr/internal/imgproc"
)

// targetSquare builds a bright square target image.
func targetSquare(n int) *imgproc.Gray {
	g := imgproc.NewGray(n, n)
	for y := n / 3; y < 2*n/3; y++ {
		for x := n / 3; x < 2*n/3; x++ {
			g.Set(x, y, 1)
		}
	}
	return g
}

func TestFresnelReconstructsTarget(t *testing.T) {
	p := DefaultFresnelParams()
	p.Width, p.Height = 64, 64
	p.Iterations = 15
	target := targetSquare(64)
	res := GenerateFresnel(p, target, 0.05)
	// the reconstruction should concentrate energy inside the square
	var inside, outside float64
	nIn, nOut := 0, 0
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			v := float64(res.Reconstruction.At(x, y))
			if target.At(x, y) > 0.5 {
				inside += v
				nIn++
			} else {
				outside += v
				nOut++
			}
		}
	}
	meanIn := inside / float64(nIn)
	meanOut := outside / float64(nOut)
	if meanIn < 3*meanOut {
		t.Errorf("reconstruction contrast too low: in %v vs out %v", meanIn, meanOut)
	}
	if res.Error > 0.8 {
		t.Errorf("relative error %v", res.Error)
	}
}

func TestFresnelIterationsImprove(t *testing.T) {
	p := DefaultFresnelParams()
	p.Width, p.Height = 64, 64
	target := targetSquare(64)
	p.Iterations = 1
	one := GenerateFresnel(p, target, 0.05)
	p.Iterations = 12
	many := GenerateFresnel(p, target, 0.05)
	if many.Error >= one.Error {
		t.Errorf("GS did not converge: %v -> %v", one.Error, many.Error)
	}
}

func TestFresnelPhaseOnly(t *testing.T) {
	p := DefaultFresnelParams()
	p.Width, p.Height = 32, 32
	res := GenerateFresnel(p, targetSquare(32), 0.03)
	for i, ph := range res.Phase {
		if ph < -math.Pi-1e-9 || ph > math.Pi+1e-9 {
			t.Fatalf("phase[%d] = %v", i, ph)
		}
	}
	if res.Stats.Iterations != p.Iterations {
		t.Errorf("iterations = %d", res.Stats.Iterations)
	}
}

func TestFresnelRejectsBadSizes(t *testing.T) {
	p := DefaultFresnelParams()
	p.Width = 100 // not a power of two
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-power-of-two size")
		}
	}()
	GenerateFresnel(p, imgproc.NewGray(100, 128), 0.05)
}

func TestFresnelDeterminism(t *testing.T) {
	p := DefaultFresnelParams()
	p.Width, p.Height = 32, 32
	p.Iterations = 5
	a := GenerateFresnel(p, targetSquare(32), 0.05)
	b := GenerateFresnel(p, targetSquare(32), 0.05)
	for i := range a.Phase {
		if a.Phase[i] != b.Phase[i] {
			t.Fatal("Fresnel hologram not deterministic")
		}
	}
}

func TestTransferFunctionUnitModulus(t *testing.T) {
	p := DefaultFresnelParams()
	p.Width, p.Height = 16, 16
	tf := transferFunction(p, 0.1)
	for i, v := range tf {
		if math.Abs(cmplxAbs(v)-1) > 1e-12 {
			t.Fatalf("|H[%d]| = %v", i, cmplxAbs(v))
		}
	}
	// z=0 is the identity
	id := transferFunction(p, 0)
	for _, v := range id {
		if math.Abs(real(v)-1) > 1e-12 || math.Abs(imag(v)) > 1e-12 {
			t.Fatal("z=0 transfer not identity")
		}
	}
}
