// Package hologram implements ILLIXR's adaptive-display component
// (Table II): computational holography with the weighted Gerchberg–Saxton
// (GSW) algorithm of Persson et al., generating an SLM phase pattern that
// focuses light onto a set of 3D focal points across multiple depth
// planes. The three tasks of Table VII map directly onto the methods here:
// hologram-to-depth propagation (per-pixel transcendentals + reduction),
// the partial-sum reduction, and depth-to-hologram back-propagation.
package hologram

import (
	"math"
	"math/cmplx"

	"illixr/internal/parallel"
)

// Spot is one target focal point in SLM tangent space: lateral position
// (x, y) in meters on the focal plane, and depth offset z in meters.
type Spot struct {
	X, Y, Z float64
	// Intensity is the desired relative intensity (default 1).
	Intensity float64
}

// Params configures the hologram computation.
type Params struct {
	Width, Height int     // SLM resolution
	PixelPitch    float64 // meters
	Wavelength    float64 // meters
	FocalLength   float64 // meters
	Iterations    int     // GSW iterations
	// Workers is the data-parallel worker count (0 or 1 = serial). The
	// per-spot pixel sums always use the fixed-tile ordered reduction of
	// internal/parallel, so the result is bitwise identical for every
	// worker count (DESIGN.md §8).
	Workers int
}

// holoTile is the fixed pixel-tile size for the per-spot sums and the
// phase back-propagation.
const holoTile = 4096

// DefaultParams models a small SLM; benchmarks scale Width/Height up to
// the paper's 2560×1440 display frames.
func DefaultParams() Params {
	return Params{
		Width: 256, Height: 256,
		PixelPitch:  8e-6,
		Wavelength:  532e-9,
		FocalLength: 0.2,
		Iterations:  5,
	}
}

// Stats records the algorithmic work of one hologram generation.
type Stats struct {
	PixelSpotOps int // transcendental evaluations (pixels × spots × passes)
	Iterations   int
}

// Result is the generated hologram.
type Result struct {
	Phase []float64 // per-pixel SLM phase in [-π, π]
	// SpotAmplitude is |V_m| for each target after the final iteration.
	SpotAmplitude []float64
	// Uniformity = min|V|/max|V| — the GSW quality metric.
	Uniformity float64
	// Efficiency = Σ|V_m|² (relative diffraction efficiency).
	Efficiency float64
	Stats      Stats
}

// deltaPhase computes Δ_mj: the phase a pixel j contributes toward spot m
// (lens + prism terms of the standard GSW formulation).
func deltaPhase(p Params, px, py int, s Spot) float64 {
	x := (float64(px) - float64(p.Width)/2) * p.PixelPitch
	y := (float64(py) - float64(p.Height)/2) * p.PixelPitch
	prism := 2 * math.Pi / (p.Wavelength * p.FocalLength) * (x*s.X + y*s.Y)
	lens := math.Pi * s.Z / (p.Wavelength * p.FocalLength * p.FocalLength) * (x*x + y*y)
	return prism + lens
}

// Generate runs weighted Gerchberg–Saxton and returns the SLM phase.
func Generate(p Params, spots []Spot) Result {
	var pool *parallel.Pool
	if p.Workers > 1 {
		pool = parallel.New(p.Workers)
	}
	return GeneratePool(pool, p, spots)
}

// spotSum is one spot's complex field partial: Σ exp(i(φ_j − Δ_mj)) over a
// pixel tile.
type spotSum struct{ re, im float64 }

// spotField computes Σ_j exp(i(φ_j − Δ_mj)) for one spot via the fixed-tile
// ordered reduction, so the sum is order-stable for every worker count.
func spotField(pool *parallel.Pool, kernel string, phase, dm []float64) spotSum {
	return parallel.MapReduce(pool, kernel, len(phase), holoTile, func(lo, hi int) spotSum {
		var t spotSum
		for j := lo; j < hi; j++ {
			s, c := math.Sincos(phase[j] - dm[j])
			t.re += c
			t.im += s
		}
		return t
	}, func(a, b spotSum) spotSum { return spotSum{a.re + b.re, a.im + b.im} })
}

// GeneratePool is Generate over a caller-supplied worker pool (nil = serial;
// the result is bitwise identical for every worker count).
func GeneratePool(pool *parallel.Pool, p Params, spots []Spot) Result {
	n := p.Width * p.Height
	m := len(spots)
	res := Result{
		Phase:         make([]float64, n),
		SpotAmplitude: make([]float64, m),
	}
	if m == 0 || n == 0 {
		return res
	}
	// Precompute Δ_mj. For the realistic sizes used here (n up to ~4M,
	// m tens) this is the dominant memory object, mirroring the
	// "globally dense accesses to hologram phases" of Table VII.
	delta := make([][]float64, m)
	for mi := range delta {
		delta[mi] = make([]float64, n)
		dm := delta[mi]
		s := spots[mi]
		pool.ForTiles("hologram_delta", n, holoTile, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				dm[j] = deltaPhase(p, j%p.Width, j/p.Width, s)
			}
		})
	}
	weights := make([]float64, m)
	for i := range weights {
		w := spots[i].Intensity
		if w <= 0 {
			w = 1
		}
		weights[i] = w
	}
	// initial phase: superposition with zero spot phases
	theta := make([]float64, m)
	amp := make([]float64, m)
	for it := 0; it < p.Iterations; it++ {
		// Task 1: hologram-to-depth. V_m = (1/N) Σ_j exp(i(φ_j − Δ_mj)).
		for mi := 0; mi < m; mi++ {
			t := spotField(pool, "hologram_spot", res.Phase, delta[mi])
			res.Stats.PixelSpotOps += n
			// Task 2: sum (the reduction epilogue)
			v := complex(t.re/float64(n), t.im/float64(n))
			amp[mi] = cmplx.Abs(v)
			theta[mi] = cmplx.Phase(v)
		}
		// GSW weight update: boost dim spots
		mean := 0.0
		for _, a := range amp {
			mean += a
		}
		mean /= float64(m)
		for mi := range weights {
			if amp[mi] > 1e-12 {
				weights[mi] *= mean / amp[mi]
			}
		}
		// Task 3: depth-to-hologram. φ_j = arg Σ_m w_m exp(i(Δ_mj + θ_m)).
		// Each pixel is independent (disjoint writes), so this tiles
		// trivially; the inner spot sum stays sequential per pixel.
		pool.ForTiles("hologram_phase", n, holoTile, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				var re, im float64
				for mi := 0; mi < m; mi++ {
					s, c := math.Sincos(delta[mi][j] + theta[mi])
					re += weights[mi] * c
					im += weights[mi] * s
				}
				res.Phase[j] = math.Atan2(im, re)
			}
		})
		res.Stats.PixelSpotOps += n * m
		res.Stats.Iterations++
	}
	// final forward pass for quality metrics
	minA, maxA := math.Inf(1), 0.0
	eff := 0.0
	for mi := 0; mi < m; mi++ {
		t := spotField(pool, "hologram_spot", res.Phase, delta[mi])
		res.Stats.PixelSpotOps += n
		a := math.Hypot(t.re, t.im) / float64(n)
		res.SpotAmplitude[mi] = a
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
		eff += a * a
	}
	if maxA > 0 {
		res.Uniformity = minA / maxA
	}
	res.Efficiency = eff
	return res
}

// SpotsFromDepthPlanes lays out a grid of focal points across nPlanes
// depth planes — the multi-focal-plane display drive of §II-A.
func SpotsFromDepthPlanes(nPlanes, perPlane int, lateralExtent, depthExtent float64) []Spot {
	var out []Spot
	if nPlanes < 1 || perPlane < 1 {
		return out
	}
	side := int(math.Ceil(math.Sqrt(float64(perPlane))))
	for pl := 0; pl < nPlanes; pl++ {
		z := 0.0
		if nPlanes > 1 {
			z = (float64(pl)/float64(nPlanes-1) - 0.5) * depthExtent
		}
		count := 0
		for gy := 0; gy < side && count < perPlane; gy++ {
			for gx := 0; gx < side && count < perPlane; gx++ {
				fx := 0.0
				fy := 0.0
				if side > 1 {
					fx = (float64(gx)/float64(side-1) - 0.5) * lateralExtent
					fy = (float64(gy)/float64(side-1) - 0.5) * lateralExtent
				}
				// offset planes laterally so spots do not overlap
				fx += float64(pl) * lateralExtent * 0.08
				out = append(out, Spot{X: fx, Y: fy, Z: z, Intensity: 1})
				count++
			}
		}
	}
	return out
}
