// Package hologram implements ILLIXR's adaptive-display component
// (Table II): computational holography with the weighted Gerchberg–Saxton
// (GSW) algorithm of Persson et al., generating an SLM phase pattern that
// focuses light onto a set of 3D focal points across multiple depth
// planes. The three tasks of Table VII map directly onto the methods here:
// hologram-to-depth propagation (per-pixel transcendentals + reduction),
// the partial-sum reduction, and depth-to-hologram back-propagation.
package hologram

import (
	"math"
	"math/cmplx"
	"sync"

	"illixr/internal/parallel"
	"illixr/internal/recycle"
)

// Spot is one target focal point in SLM tangent space: lateral position
// (x, y) in meters on the focal plane, and depth offset z in meters.
type Spot struct {
	X, Y, Z float64
	// Intensity is the desired relative intensity (default 1).
	Intensity float64
}

// Params configures the hologram computation.
type Params struct {
	Width, Height int     // SLM resolution
	PixelPitch    float64 // meters
	Wavelength    float64 // meters
	FocalLength   float64 // meters
	Iterations    int     // GSW iterations
	// Workers is the data-parallel worker count (0 or 1 = serial). The
	// per-spot pixel sums always use the fixed-tile ordered reduction of
	// internal/parallel, so the result is bitwise identical for every
	// worker count (DESIGN.md §8).
	Workers int
}

// holoTile is the fixed pixel-tile size for the per-spot sums and the
// phase back-propagation.
const holoTile = 4096

// DefaultParams models a small SLM; benchmarks scale Width/Height up to
// the paper's 2560×1440 display frames.
func DefaultParams() Params {
	return Params{
		Width: 256, Height: 256,
		PixelPitch:  8e-6,
		Wavelength:  532e-9,
		FocalLength: 0.2,
		Iterations:  5,
	}
}

// Stats records the algorithmic work of one hologram generation.
type Stats struct {
	PixelSpotOps int // transcendental evaluations (pixels × spots × passes)
	Iterations   int
}

// Result is the generated hologram. Phase and SpotAmplitude are recycled
// buffers: release them with ReleaseResult when the hologram is no longer
// needed (optional — an unreleased Result is simply garbage-collected).
type Result struct {
	Phase []float64 // per-pixel SLM phase in [-π, π]
	// SpotAmplitude is |V_m| for each target after the final iteration.
	SpotAmplitude []float64
	// Uniformity = min|V|/max|V| — the GSW quality metric.
	Uniformity float64
	// Efficiency = Σ|V_m|² (relative diffraction efficiency).
	Efficiency float64
	Stats      Stats
}

// ReleaseResult returns the hologram's buffers to the shared pools. The
// Result must not be used afterwards (DESIGN.md §10).
func ReleaseResult(r *Result) {
	recycle.F64.Put(r.Phase)
	recycle.F64.Put(r.SpotAmplitude)
	r.Phase, r.SpotAmplitude = nil, nil
}

// deltaPhase computes Δ_mj: the phase a pixel j contributes toward spot m
// (lens + prism terms of the standard GSW formulation).
func deltaPhase(p Params, px, py int, s Spot) float64 {
	x := (float64(px) - float64(p.Width)/2) * p.PixelPitch
	y := (float64(py) - float64(p.Height)/2) * p.PixelPitch
	prism := 2 * math.Pi / (p.Wavelength * p.FocalLength) * (x*s.X + y*s.Y)
	lens := math.Pi * s.Z / (p.Wavelength * p.FocalLength * p.FocalLength) * (x*x + y*y)
	return prism + lens
}

// Generate runs weighted Gerchberg–Saxton and returns the SLM phase.
func Generate(p Params, spots []Spot) Result {
	var pool *parallel.Pool
	if p.Workers > 1 {
		pool = parallel.New(p.Workers)
	}
	return GeneratePool(pool, p, spots)
}

// gswCtx carries one GSW invocation's state so the three tile kernels are
// built once per context and reused; closure literals at the ForTiles call
// sites would heap-allocate on every frame (DESIGN.md §10).
type gswCtx struct {
	p       Params
	spot    Spot
	dm      []float64   // current spot's Δ_mj row
	phase   []float64   // SLM phase being iterated
	delta   [][]float64 // all Δ_mj rows (reused backing array)
	theta   []float64
	weights []float64
	m       int

	deltaFn func(lo, hi int)
	spotFn  func(lo, hi int) (re, im float64)
	phaseFn func(lo, hi int)
}

var gswCtxPool = sync.Pool{New: func() any {
	c := &gswCtx{}
	c.deltaFn = func(lo, hi int) {
		p, dm, s := c.p, c.dm, c.spot
		for j := lo; j < hi; j++ {
			dm[j] = deltaPhase(p, j%p.Width, j/p.Width, s)
		}
	}
	c.spotFn = func(lo, hi int) (re, im float64) {
		phase, dm := c.phase, c.dm
		for j := lo; j < hi; j++ {
			s, cv := math.Sincos(phase[j] - dm[j])
			re += cv
			im += s
		}
		return re, im
	}
	c.phaseFn = func(lo, hi int) {
		phase, delta, theta, weights, m := c.phase, c.delta, c.theta, c.weights, c.m
		for j := lo; j < hi; j++ {
			var re, im float64
			for mi := 0; mi < m; mi++ {
				s, cv := math.Sincos(delta[mi][j] + theta[mi])
				re += weights[mi] * cv
				im += weights[mi] * s
			}
			phase[j] = math.Atan2(im, re)
		}
	}
	return c
}}

// spotField computes Σ_j exp(i(φ_j − Δ_mj)) for spot dm via the fixed-tile
// ordered reduction, so the sum is order-stable for every worker count.
func (c *gswCtx) spotField(pool *parallel.Pool, kernel string, dm []float64, n int) (re, im float64) {
	c.dm = dm
	return pool.SumTiles2(kernel, n, holoTile, c.spotFn)
}

// GeneratePool is Generate over a caller-supplied worker pool (nil = serial;
// the result is bitwise identical for every worker count).
func GeneratePool(pool *parallel.Pool, p Params, spots []Spot) Result {
	n := p.Width * p.Height
	m := len(spots)
	if m == 0 || n == 0 {
		return Result{Phase: make([]float64, n), SpotAmplitude: make([]float64, m)}
	}
	res := Result{
		Phase:         recycle.F64.Get(n),
		SpotAmplitude: recycle.F64.Get(m),
	}
	c := gswCtxPool.Get().(*gswCtx)
	c.p = p
	c.phase = res.Phase
	c.m = m
	// Precompute Δ_mj. For the realistic sizes used here (n up to ~4M,
	// m tens) this is the dominant memory object, mirroring the
	// "globally dense accesses to hologram phases" of Table VII. The rows
	// recycle through the shared float64 pool.
	c.delta = c.delta[:0]
	for mi := 0; mi < m; mi++ {
		dm := recycle.F64.Get(n)
		c.dm, c.spot = dm, spots[mi]
		pool.ForTiles("hologram_delta", n, holoTile, c.deltaFn)
		c.delta = append(c.delta, dm)
	}
	weights := recycle.F64.Get(m)
	for i := range weights {
		w := spots[i].Intensity
		if w <= 0 {
			w = 1
		}
		weights[i] = w
	}
	// initial phase: superposition with zero spot phases
	theta := recycle.F64.Get(m)
	amp := recycle.F64.Get(m)
	c.theta, c.weights = theta, weights
	for it := 0; it < p.Iterations; it++ {
		// Task 1: hologram-to-depth. V_m = (1/N) Σ_j exp(i(φ_j − Δ_mj)).
		for mi := 0; mi < m; mi++ {
			re, im := c.spotField(pool, "hologram_spot", c.delta[mi], n)
			res.Stats.PixelSpotOps += n
			// Task 2: sum (the reduction epilogue)
			v := complex(re/float64(n), im/float64(n))
			amp[mi] = cmplx.Abs(v)
			theta[mi] = cmplx.Phase(v)
		}
		// GSW weight update: boost dim spots
		mean := 0.0
		for _, a := range amp {
			mean += a
		}
		mean /= float64(m)
		for mi := range weights {
			if amp[mi] > 1e-12 {
				weights[mi] *= mean / amp[mi]
			}
		}
		// Task 3: depth-to-hologram. φ_j = arg Σ_m w_m exp(i(Δ_mj + θ_m)).
		// Each pixel is independent (disjoint writes), so this tiles
		// trivially; the inner spot sum stays sequential per pixel.
		pool.ForTiles("hologram_phase", n, holoTile, c.phaseFn)
		res.Stats.PixelSpotOps += n * m
		res.Stats.Iterations++
	}
	// final forward pass for quality metrics
	minA, maxA := math.Inf(1), 0.0
	eff := 0.0
	for mi := 0; mi < m; mi++ {
		re, im := c.spotField(pool, "hologram_spot", c.delta[mi], n)
		res.Stats.PixelSpotOps += n
		a := math.Hypot(re, im) / float64(n)
		res.SpotAmplitude[mi] = a
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
		eff += a * a
	}
	if maxA > 0 {
		res.Uniformity = minA / maxA
	}
	res.Efficiency = eff
	for mi := range c.delta {
		recycle.F64.Put(c.delta[mi])
		c.delta[mi] = nil
	}
	c.delta = c.delta[:0]
	recycle.F64.Put(weights)
	recycle.F64.Put(theta)
	recycle.F64.Put(amp)
	c.dm, c.phase, c.theta, c.weights = nil, nil, nil, nil
	c.p, c.spot, c.m = Params{}, Spot{}, 0
	gswCtxPool.Put(c)
	return res
}

// SpotsFromDepthPlanes lays out a grid of focal points across nPlanes
// depth planes — the multi-focal-plane display drive of §II-A.
func SpotsFromDepthPlanes(nPlanes, perPlane int, lateralExtent, depthExtent float64) []Spot {
	var out []Spot
	if nPlanes < 1 || perPlane < 1 {
		return out
	}
	side := int(math.Ceil(math.Sqrt(float64(perPlane))))
	for pl := 0; pl < nPlanes; pl++ {
		z := 0.0
		if nPlanes > 1 {
			z = (float64(pl)/float64(nPlanes-1) - 0.5) * depthExtent
		}
		count := 0
		for gy := 0; gy < side && count < perPlane; gy++ {
			for gx := 0; gx < side && count < perPlane; gx++ {
				fx := 0.0
				fy := 0.0
				if side > 1 {
					fx = (float64(gx)/float64(side-1) - 0.5) * lateralExtent
					fy = (float64(gy)/float64(side-1) - 0.5) * lateralExtent
				}
				// offset planes laterally so spots do not overlap
				fx += float64(pl) * lateralExtent * 0.08
				out = append(out, Spot{X: fx, Y: fy, Z: z, Intensity: 1})
				count++
			}
		}
	}
	return out
}
