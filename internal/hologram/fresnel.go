package hologram

import (
	"math"
	"sync"

	"illixr/internal/dsp"
	"illixr/internal/imgproc"
	"illixr/internal/recycle"
)

// This file provides the second, interchangeable hologram implementation
// (§II-B plug-n-play): full-field Fresnel propagation via FFT, used when
// the display target is an *image* per depth plane rather than a set of
// focal spots. It is the classical iterative Fourier-transform algorithm
// (Gerchberg–Saxton proper) between the SLM plane and one or more image
// planes.

// FresnelParams configures FFT-based hologram generation. Width and
// Height must be powers of two.
type FresnelParams struct {
	Width, Height int
	PixelPitch    float64 // meters
	Wavelength    float64 // meters
	Iterations    int
}

// DefaultFresnelParams returns a small test configuration.
func DefaultFresnelParams() FresnelParams {
	return FresnelParams{
		Width: 128, Height: 128,
		PixelPitch: 8e-6,
		Wavelength: 532e-9,
		Iterations: 10,
	}
}

// field is a complex 2-D wavefront in row-major layout.
type field struct {
	w, h int
	data []complex128
}

var fieldHeaders = sync.Pool{New: func() any { return &field{} }}

// getField returns a zeroed pooled w×h wavefront.
func getField(w, h int) *field {
	f := fieldHeaders.Get().(*field)
	f.w, f.h = w, h
	f.data = recycle.C128.Get(w * h)
	return f
}

// putField recycles a wavefront obtained from getField.
func putField(f *field) {
	recycle.C128.Put(f.data)
	f.data = nil
	f.w, f.h = 0, 0
	fieldHeaders.Put(f)
}

// fft2 performs an in-place 2-D FFT (inverse when inv is true). The
// row/column staging buffers recycle through the shared complex pool.
func (f *field) fft2(inv bool) {
	row := recycle.C128.Get(f.w)
	for y := 0; y < f.h; y++ {
		copy(row, f.data[y*f.w:(y+1)*f.w])
		if inv {
			dsp.IFFT(row)
		} else {
			dsp.FFT(row)
		}
		copy(f.data[y*f.w:(y+1)*f.w], row)
	}
	recycle.C128.Put(row)
	col := recycle.C128.Get(f.h)
	for x := 0; x < f.w; x++ {
		for y := 0; y < f.h; y++ {
			col[y] = f.data[y*f.w+x]
		}
		if inv {
			dsp.IFFT(col)
		} else {
			dsp.FFT(col)
		}
		for y := 0; y < f.h; y++ {
			f.data[y*f.w+x] = col[y]
		}
	}
	recycle.C128.Put(col)
}

// tfKey identifies one cached angular-spectrum transfer function.
type tfKey struct {
	p FresnelParams
	z float64
}

// transferFuncs caches the propagation phase factors per (params, z). The
// factors depend only on the optical geometry, which is fixed for the life
// of a display pipeline, so recomputing n sincos evaluations per frame
// (twice: +z and −z) is pure waste. Cached slices are shared and
// read-only.
var (
	transferMu    sync.RWMutex
	transferFuncs = map[tfKey][]complex128{}
)

// transferFunction returns the angular-spectrum propagation phase factors
// for distance z (meters). Frequencies follow FFT bin ordering. The
// returned slice comes from the params-keyed cache and must be treated as
// read-only.
func transferFunction(p FresnelParams, z float64) []complex128 {
	key := tfKey{p: p, z: z}
	transferMu.RLock()
	out := transferFuncs[key]
	transferMu.RUnlock()
	if out != nil {
		return out
	}
	transferMu.Lock()
	defer transferMu.Unlock()
	if out = transferFuncs[key]; out != nil {
		return out
	}
	out = computeTransferFunction(p, z)
	transferFuncs[key] = out
	return out
}

func computeTransferFunction(p FresnelParams, z float64) []complex128 {
	w, h := p.Width, p.Height
	out := make([]complex128, w*h)
	for y := 0; y < h; y++ {
		fy := fftFreq(y, h) / (float64(h) * p.PixelPitch)
		for x := 0; x < w; x++ {
			fx := fftFreq(x, w) / (float64(w) * p.PixelPitch)
			// Fresnel (paraxial) transfer function
			phase := -math.Pi * p.Wavelength * z * (fx*fx + fy*fy)
			s, c := math.Sincos(phase)
			out[y*w+x] = complex(c, s)
		}
	}
	return out
}

func fftFreq(i, n int) float64 {
	if i <= n/2 {
		return float64(i)
	}
	return float64(i - n)
}

// propagate applies the transfer function in the frequency domain.
func (f *field) propagate(tf []complex128) {
	f.fft2(false)
	for i := range f.data {
		f.data[i] *= tf[i]
	}
	f.fft2(true)
}

// FresnelResult is the output of GenerateFresnel. Phase and
// Reconstruction are recycled buffers: release them with
// ReleaseFresnelResult when no longer needed (optional).
type FresnelResult struct {
	Phase []float64 // SLM phase pattern
	// Reconstruction is the intensity image obtained by propagating the
	// final phase-only hologram to the target plane.
	Reconstruction *imgproc.Gray
	// Error is the mean absolute intensity error vs the (normalized)
	// target after the final iteration.
	Error float64
	Stats Stats
}

// ReleaseFresnelResult returns the result's buffers to the shared pools.
// The result must not be used afterwards (DESIGN.md §10).
func ReleaseFresnelResult(r *FresnelResult) {
	recycle.F64.Put(r.Phase)
	r.Phase = nil
	if r.Reconstruction != nil {
		imgproc.PutGray(r.Reconstruction)
		r.Reconstruction = nil
	}
}

// GenerateFresnel runs Gerchberg–Saxton between the SLM plane and a
// target intensity image at propagation distance z (meters).
func GenerateFresnel(p FresnelParams, target *imgproc.Gray, z float64) FresnelResult {
	if !dsp.IsPowerOfTwo(p.Width) || !dsp.IsPowerOfTwo(p.Height) {
		panic("hologram: Fresnel dimensions must be powers of two")
	}
	if target.W != p.Width || target.H != p.Height {
		panic("hologram: target size mismatch")
	}
	n := p.Width * p.Height
	// normalize the target amplitude
	amp := recycle.F64.Get(n)
	var sum float64
	for i, v := range target.Pix {
		amp[i] = math.Sqrt(math.Max(0, float64(v)))
		sum += amp[i] * amp[i]
	}
	if sum == 0 {
		sum = 1
	}
	norm := math.Sqrt(float64(n) / sum)
	for i := range amp {
		amp[i] *= norm
	}

	tfFwd := transferFunction(p, z)
	tfBack := transferFunction(p, -z)

	res := FresnelResult{Phase: recycle.F64.Get(n)}
	f := getField(p.Width, p.Height)
	// start from a deterministic pseudo-random phase to spread energy
	state := uint64(0x9E3779B97F4A7C15)
	for i := range f.data {
		state = state*6364136223846793005 + 1442695040888963407
		ph := 2 * math.Pi * float64(state>>11) / float64(1<<53)
		s, c := math.Sincos(ph)
		f.data[i] = complex(c, s)
	}
	for it := 0; it < p.Iterations; it++ {
		// SLM plane: phase-only constraint (unit amplitude)
		for i, v := range f.data {
			m := cmplxAbs(v)
			if m > 1e-15 {
				f.data[i] = v * complex(1/m, 0)
			} else {
				f.data[i] = 1
			}
		}
		// forward propagate to the image plane
		f.propagate(tfFwd)
		// image plane: impose the target amplitude, keep phase
		for i, v := range f.data {
			m := cmplxAbs(v)
			if m > 1e-15 {
				f.data[i] = v * complex(amp[i]/m, 0)
			} else {
				f.data[i] = complex(amp[i], 0)
			}
		}
		// back propagate
		f.propagate(tfBack)
		res.Stats.Iterations++
		res.Stats.PixelSpotOps += 4 * n // two 2-D FFT pairs dominate
	}
	// final phase-only hologram and its reconstruction
	for i, v := range f.data {
		res.Phase[i] = math.Atan2(imagPart(v), realPart(v))
		s, c := math.Sincos(res.Phase[i])
		f.data[i] = complex(c, s)
	}
	f.propagate(tfFwd)
	res.Reconstruction = imgproc.GetGray(p.Width, p.Height)
	var errSum, tgtSum float64
	for i, v := range f.data {
		inten := cmplxAbs(v)
		inten *= inten
		// map back to the original target intensity scale
		res.Reconstruction.Pix[i] = float32(inten * sum / float64(n))
		got := inten
		want := amp[i] * amp[i]
		errSum += math.Abs(got - want)
		tgtSum += want
	}
	if tgtSum > 0 {
		res.Error = errSum / tgtSum
	}
	recycle.F64.Put(amp)
	putField(f)
	return res
}

func cmplxAbs(v complex128) float64 { return math.Hypot(real(v), imag(v)) }
func realPart(v complex128) float64 { return real(v) }
func imagPart(v complex128) float64 { return imag(v) }
