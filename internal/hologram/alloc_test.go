package hologram

import (
	"testing"

	"illixr/internal/imgproc"
	"illixr/internal/testutil"
)

// TestZeroAllocGSW pins the serial GSW solver at zero steady-state
// allocations once its context, delta rows, and result buffers cycle
// through the pools.
func TestZeroAllocGSW(t *testing.T) {
	p := DefaultParams()
	p.Width, p.Height = 64, 64
	p.Iterations = 2
	spots := SpotsFromDepthPlanes(2, 3, 6e-4, 0.02)
	testutil.MustZeroAllocs(t, "GeneratePool", func() {
		r := GeneratePool(nil, p, spots)
		ReleaseResult(&r)
	})
}

// TestZeroAllocFresnel pins the Fresnel propagation path at zero
// steady-state allocations: the transfer function comes from the
// params-keyed cache and every field/spectrum buffer is recycled.
func TestZeroAllocFresnel(t *testing.T) {
	p := DefaultFresnelParams()
	p.Width, p.Height = 64, 64
	p.Iterations = 3
	target := imgproc.NewGray(64, 64)
	for i := range target.Pix {
		target.Pix[i] = float32(i%17) / 17
	}
	testutil.MustZeroAllocs(t, "GenerateFresnel", func() {
		r := GenerateFresnel(p, target, 0.15)
		ReleaseFresnelResult(&r)
	})
}
