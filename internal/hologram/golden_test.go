package hologram

import (
	"math"
	"testing"

	"illixr/internal/parallel"
	"illixr/internal/testutil"
)

func testParams() (Params, []Spot) {
	p := DefaultParams()
	p.Width, p.Height = 48, 48
	p.Iterations = 3
	return p, SpotsFromDepthPlanes(2, 4, 6e-4, 0.02)
}

func TestGoldenGenerate(t *testing.T) {
	p, spots := testParams()
	res := Generate(p, spots)
	var vals []float64
	stride := len(res.Phase)/256 + 1
	for i := 0; i < len(res.Phase); i += stride {
		vals = append(vals, res.Phase[i])
	}
	vals = append(vals, res.SpotAmplitude...)
	vals = append(vals, res.Uniformity, res.Efficiency)
	testutil.CheckGolden(t, "testdata/generate_48x48.golden", vals, 0)
}

func TestDeterminismGenerate(t *testing.T) {
	p, spots := testParams()
	ref := GeneratePool(nil, p, spots)
	for _, workers := range []int{2, 4, 7} {
		got := GeneratePool(parallel.New(workers), p, spots)
		for i := range got.Phase {
			if math.Float64bits(got.Phase[i]) != math.Float64bits(ref.Phase[i]) {
				t.Fatalf("workers=%d: phase %d differs: %v vs %v", workers, i, got.Phase[i], ref.Phase[i])
			}
		}
		for i := range got.SpotAmplitude {
			if math.Float64bits(got.SpotAmplitude[i]) != math.Float64bits(ref.SpotAmplitude[i]) {
				t.Fatalf("workers=%d: amplitude %d differs", workers, i)
			}
		}
		if math.Float64bits(got.Uniformity) != math.Float64bits(ref.Uniformity) ||
			math.Float64bits(got.Efficiency) != math.Float64bits(ref.Efficiency) {
			t.Fatalf("workers=%d: quality metrics differ", workers)
		}
	}
}
