package mathx

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix of arbitrary size. It is the workhorse
// type for the EKF in the VIO component (covariance, Jacobians) and for the
// Gauss-Newton solvers in triangulation and scene reconstruction.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a zero matrix of the given shape.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mathx: invalid matrix shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatFrom builds a matrix from row-major data. The slice is used
// directly (not copied).
func NewMatFrom(rows, cols int, data []float64) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mathx: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (r, c).
func (m *Mat) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores v at element (r, c).
func (m *Mat) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	out := NewMat(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Data[c*m.Rows+r] = m.Data[r*m.Cols+c]
		}
	}
	return out
}

// MulMat returns m * n (GEMM).
func (m *Mat) MulMat(n *Mat) *Mat {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("mathx: mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMat(m.Rows, n.Cols)
	for r := 0; r < m.Rows; r++ {
		mrow := m.Data[r*m.Cols : (r+1)*m.Cols]
		orow := out.Data[r*n.Cols : (r+1)*n.Cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			nrow := n.Data[k*n.Cols : (k+1)*n.Cols]
			for c, nv := range nrow {
				orow[c] += mv * nv
			}
		}
	}
	return out
}

// MulVecN returns m * v for a length-Cols vector.
func (m *Mat) MulVecN(v []float64) []float64 {
	out := make([]float64, m.Rows)
	m.MulVecNInto(out, v)
	return out
}

// MulVecNInto writes m * v into dst (length Rows), allocating nothing.
func (m *Mat) MulVecNInto(dst, v []float64) {
	if len(v) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mathx: mulvec shape mismatch %dx%d * %d -> %d", m.Rows, m.Cols, len(v), len(dst)))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		s := 0.0
		for c, rv := range row {
			s += rv * v[c]
		}
		dst[r] = s
	}
}

// AddInPlace adds n into m element-wise.
func (m *Mat) AddInPlace(n *Mat) {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("mathx: add shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += n.Data[i]
	}
}

// SubMat returns m - n.
func (m *Mat) SubMat(n *Mat) *Mat {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("mathx: sub shape mismatch")
	}
	out := NewMat(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - n.Data[i]
	}
	return out
}

// ScaleInPlace multiplies every element by s.
func (m *Mat) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// SetBlock copies src into m with its top-left corner at (r0, c0).
func (m *Mat) SetBlock(r0, c0 int, src *Mat) {
	if r0+src.Rows > m.Rows || c0+src.Cols > m.Cols {
		panic("mathx: SetBlock out of range")
	}
	for r := 0; r < src.Rows; r++ {
		copy(m.Data[(r0+r)*m.Cols+c0:(r0+r)*m.Cols+c0+src.Cols],
			src.Data[r*src.Cols:(r+1)*src.Cols])
	}
}

// Block extracts the rows×cols sub-matrix at (r0, c0) as a copy.
func (m *Mat) Block(r0, c0, rows, cols int) *Mat {
	if r0+rows > m.Rows || c0+cols > m.Cols || r0 < 0 || c0 < 0 {
		panic("mathx: Block out of range")
	}
	out := NewMat(rows, cols)
	for r := 0; r < rows; r++ {
		copy(out.Data[r*cols:(r+1)*cols],
			m.Data[(r0+r)*m.Cols+c0:(r0+r)*m.Cols+c0+cols])
	}
	return out
}

// SetMat3 copies a Mat3 into m at (r0, c0).
func (m *Mat) SetMat3(r0, c0 int, src Mat3) {
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			m.Set(r0+r, c0+c, src[3*r+c])
		}
	}
}

// Symmetrize averages m with its transpose in place (m must be square);
// used to keep EKF covariances numerically symmetric.
func (m *Mat) Symmetrize() {
	if m.Rows != m.Cols {
		panic("mathx: Symmetrize requires square matrix")
	}
	n := m.Rows
	for r := 0; r < n; r++ {
		for c := r + 1; c < n; c++ {
			v := 0.5 * (m.Data[r*n+c] + m.Data[c*n+r])
			m.Data[r*n+c] = v
			m.Data[c*n+r] = v
		}
	}
}

// MaxAbs returns the largest absolute element value.
func (m *Mat) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Cholesky computes the lower-triangular factor L with m = L Lᵀ.
// Returns false if m is not (numerically) positive definite.
func (m *Mat) Cholesky() (*Mat, bool) {
	if m.Rows != m.Cols {
		panic("mathx: Cholesky requires square matrix")
	}
	n := m.Rows
	l := NewMat(n, n)
	for j := 0; j < n; j++ {
		d := m.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, false
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, true
}

// CholeskySolve solves m x = b via Cholesky factorization. m must be
// symmetric positive definite.
func (m *Mat) CholeskySolve(b []float64) ([]float64, bool) {
	l, ok := m.Cholesky()
	if !ok {
		return nil, false
	}
	n := m.Rows
	// forward: L y = b
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// backward: Lᵀ x = y
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, true
}

// CholeskySolveMat solves m X = B column-by-column.
func (m *Mat) CholeskySolveMat(b *Mat) (*Mat, bool) {
	if m.Rows != b.Rows {
		panic("mathx: CholeskySolveMat shape mismatch")
	}
	out := NewMat(b.Rows, b.Cols)
	col := make([]float64, b.Rows)
	for c := 0; c < b.Cols; c++ {
		for r := 0; r < b.Rows; r++ {
			col[r] = b.At(r, c)
		}
		x, ok := m.CholeskySolve(col)
		if !ok {
			return nil, false
		}
		for r := 0; r < b.Rows; r++ {
			out.Set(r, c, x[r])
		}
	}
	return out, true
}

// LUSolve solves m x = b by Gaussian elimination with partial pivoting.
func (m *Mat) LUSolve(b []float64) ([]float64, bool) {
	if m.Rows != m.Cols || len(b) != m.Rows {
		panic("mathx: LUSolve shape mismatch")
	}
	n := m.Rows
	a := m.Clone()
	x := make([]float64, n)
	copy(x, b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// pivot
		p, pmax := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > pmax {
				p, pmax = r, v
			}
		}
		if pmax < 1e-300 {
			return nil, false
		}
		if p != col {
			for c := 0; c < n; c++ {
				a.Data[col*n+c], a.Data[p*n+c] = a.Data[p*n+c], a.Data[col*n+c]
			}
			x[col], x[p] = x[p], x[col]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a.Data[r*n+c] -= f * a.Data[col*n+c]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for c := i + 1; c < n; c++ {
			s -= a.At(i, c) * x[c]
		}
		x[i] = s / a.At(i, i)
	}
	return x, true
}

// QR computes the thin QR decomposition m = Q R via Householder
// reflections, with Q of shape rows×cols and R of shape cols×cols
// (requires rows >= cols).
func (m *Mat) QR() (q, r *Mat) {
	rows, cols := m.Rows, m.Cols
	if rows < cols {
		panic("mathx: QR requires rows >= cols")
	}
	a := m.Clone()
	// Accumulate Householder vectors; build Q afterwards.
	vs := make([][]float64, 0, cols)
	for k := 0; k < cols; k++ {
		// norm of column k below diagonal
		norm := 0.0
		for i := k; i < rows; i++ {
			norm += a.At(i, k) * a.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			vs = append(vs, nil)
			continue
		}
		alpha := -norm
		if a.At(k, k) < 0 {
			alpha = norm
		}
		v := make([]float64, rows)
		v[k] = a.At(k, k) - alpha
		for i := k + 1; i < rows; i++ {
			v[i] = a.At(i, k)
		}
		vnorm2 := 0.0
		for i := k; i < rows; i++ {
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 < 1e-300 {
			vs = append(vs, nil)
			continue
		}
		// apply H = I - 2 v vᵀ / (vᵀv) to remaining columns
		for c := k; c < cols; c++ {
			dot := 0.0
			for i := k; i < rows; i++ {
				dot += v[i] * a.At(i, c)
			}
			f := 2 * dot / vnorm2
			for i := k; i < rows; i++ {
				a.Set(i, c, a.At(i, c)-f*v[i])
			}
		}
		vs = append(vs, v)
	}
	r = NewMat(cols, cols)
	for i := 0; i < cols; i++ {
		for j := i; j < cols; j++ {
			r.Set(i, j, a.At(i, j))
		}
	}
	// Q = H₀ H₁ … H_{k-1} applied to the first `cols` columns of I.
	q = NewMat(rows, cols)
	for c := 0; c < cols; c++ {
		e := make([]float64, rows)
		e[c] = 1
		for k := len(vs) - 1; k >= 0; k-- {
			v := vs[k]
			if v == nil {
				continue
			}
			vnorm2, dot := 0.0, 0.0
			for i := k; i < rows; i++ {
				vnorm2 += v[i] * v[i]
				dot += v[i] * e[i]
			}
			f := 2 * dot / vnorm2
			for i := k; i < rows; i++ {
				e[i] -= f * v[i]
			}
		}
		for i := 0; i < rows; i++ {
			q.Set(i, c, e[i])
		}
	}
	return q, r
}

// SVD computes the singular value decomposition m = U diag(s) Vᵀ using
// one-sided Jacobi rotations. Suitable for the small/medium matrices in
// triangulation and nullspace projection. U is rows×cols, V is cols×cols,
// and s holds the cols singular values in decreasing order.
func (m *Mat) SVD() (u *Mat, s []float64, v *Mat) {
	rows, cols := m.Rows, m.Cols
	if rows < cols {
		// Work on the transpose and swap the factors.
		vt, sv, ut := m.T().SVD()
		return ut, sv, vt
	}
	a := m.Clone()
	v = Eye(cols)
	const maxSweeps = 60
	eps := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < cols-1; p++ {
			for q := p + 1; q < cols; q++ {
				// compute [alpha gamma; gamma beta] = submatrix of AᵀA
				var alpha, beta, gamma float64
				for i := 0; i < rows; i++ {
					ap := a.At(i, p)
					aq := a.At(i, q)
					alpha += ap * ap
					beta += aq * aq
					gamma += ap * aq
				}
				off += gamma * gamma
				if math.Abs(gamma) < eps*math.Sqrt(alpha*beta)+1e-300 {
					continue
				}
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				for i := 0; i < rows; i++ {
					ap := a.At(i, p)
					aq := a.At(i, q)
					a.Set(i, p, c*ap-sn*aq)
					a.Set(i, q, sn*ap+c*aq)
				}
				for i := 0; i < cols; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-sn*vq)
					v.Set(i, q, sn*vp+c*vq)
				}
			}
		}
		if off < eps {
			break
		}
	}
	// singular values are column norms of a
	s = make([]float64, cols)
	u = NewMat(rows, cols)
	type cs struct {
		sv  float64
		idx int
	}
	order := make([]cs, cols)
	for c := 0; c < cols; c++ {
		norm := 0.0
		for i := 0; i < rows; i++ {
			norm += a.At(i, c) * a.At(i, c)
		}
		order[c] = cs{math.Sqrt(norm), c}
	}
	// sort descending by singular value (insertion sort; cols is small)
	for i := 1; i < cols; i++ {
		for j := i; j > 0 && order[j].sv > order[j-1].sv; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	vOrdered := NewMat(cols, cols)
	for newc, o := range order {
		s[newc] = o.sv
		for i := 0; i < rows; i++ {
			if o.sv > 1e-300 {
				u.Set(i, newc, a.At(i, o.idx)/o.sv)
			}
		}
		for i := 0; i < cols; i++ {
			vOrdered.Set(i, newc, v.At(i, o.idx))
		}
	}
	return u, s, vOrdered
}

// Nullspace returns an orthonormal basis (rows×k) for the left nullspace
// of m, i.e. the columns N with Nᵀ m = 0, using the full QR of m. Used by
// the MSCKF update to project out feature-position dependence.
func (m *Mat) Nullspace() *Mat {
	rows, cols := m.Rows, m.Cols
	if rows <= cols {
		return NewMat(rows, 0)
	}
	// Full QR via Householder on m, then the trailing rows-cols columns of
	// the full Q span the left nullspace.
	a := m.Clone()
	vs := make([][]float64, 0, cols)
	for k := 0; k < cols; k++ {
		norm := 0.0
		for i := k; i < rows; i++ {
			norm += a.At(i, k) * a.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			vs = append(vs, nil)
			continue
		}
		alpha := -norm
		if a.At(k, k) < 0 {
			alpha = norm
		}
		v := make([]float64, rows)
		v[k] = a.At(k, k) - alpha
		for i := k + 1; i < rows; i++ {
			v[i] = a.At(i, k)
		}
		vnorm2 := 0.0
		for i := k; i < rows; i++ {
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 < 1e-300 {
			vs = append(vs, nil)
			continue
		}
		for c := k; c < cols; c++ {
			dot := 0.0
			for i := k; i < rows; i++ {
				dot += v[i] * a.At(i, c)
			}
			f := 2 * dot / vnorm2
			for i := k; i < rows; i++ {
				a.Set(i, c, a.At(i, c)-f*v[i])
			}
		}
		vs = append(vs, v)
	}
	nsCols := rows - cols
	out := NewMat(rows, nsCols)
	for c := 0; c < nsCols; c++ {
		e := make([]float64, rows)
		e[cols+c] = 1
		for k := len(vs) - 1; k >= 0; k-- {
			v := vs[k]
			if v == nil {
				continue
			}
			vnorm2, dot := 0.0, 0.0
			for i := k; i < rows; i++ {
				vnorm2 += v[i] * v[i]
				dot += v[i] * e[i]
			}
			f := 2 * dot / vnorm2
			for i := k; i < rows; i++ {
				e[i] -= f * v[i]
			}
		}
		for i := 0; i < rows; i++ {
			out.Set(i, c, e[i])
		}
	}
	return out
}
