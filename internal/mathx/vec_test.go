package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func vecApprox(a, b Vec3, eps float64) bool {
	return approx(a.X, b.X, eps) && approx(a.Y, b.Y, eps) && approx(a.Z, b.Z, eps)
}

func TestVec3Basics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Add(b); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Norm(); !approx(got, math.Sqrt(14), tol) {
		t.Errorf("Norm = %v", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	if got := a.Cross(b); got != (Vec3{0, 0, 1}) {
		t.Errorf("x cross y = %v, want z", got)
	}
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{clampInput(ax), clampInput(ay), clampInput(az)}
		b := Vec3{clampInput(bx), clampInput(by), clampInput(bz)}
		c := a.Cross(b)
		return approx(c.Dot(a), 0, 1e-6*(1+a.Norm()*b.Norm())) &&
			approx(c.Dot(b), 0, 1e-6*(1+a.Norm()*b.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampInput maps arbitrary quick-generated floats into a sane range and
// filters NaN/Inf.
func clampInput(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Mod(x, 1000)
}

func TestVec3Normalized(t *testing.T) {
	v := Vec3{3, 4, 0}.Normalized()
	if !approx(v.Norm(), 1, tol) {
		t.Errorf("norm = %v", v.Norm())
	}
	z := Vec3{}.Normalized()
	if z != (Vec3{}) {
		t.Errorf("zero normalized = %v", z)
	}
}

func TestVec3Lerp(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{10, -10, 4}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); !vecApprox(got, b, tol) {
		t.Errorf("lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); !vecApprox(got, Vec3{5, -5, 2}, tol) {
		t.Errorf("lerp 0.5 = %v", got)
	}
}

func TestVec4PerspectiveDivide(t *testing.T) {
	v := Vec4{2, 4, 6, 2}
	if got := v.PerspectiveDivide(); got != (Vec3{1, 2, 3}) {
		t.Errorf("divide = %v", got)
	}
	w0 := Vec4{1, 2, 3, 0}
	if got := w0.PerspectiveDivide(); got != (Vec3{1, 2, 3}) {
		t.Errorf("w=0 divide = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp broken")
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	for _, d := range []float64{0, 30, 45, 90, 180, 360, -90} {
		if got := Rad2Deg(Deg2Rad(d)); !approx(got, d, tol) {
			t.Errorf("roundtrip %v -> %v", d, got)
		}
	}
}

func TestVec3Elem(t *testing.T) {
	v := Vec3{1, 2, 3}
	if v.Elem(0) != 1 || v.Elem(1) != 2 || v.Elem(2) != 3 {
		t.Error("Elem broken")
	}
}
