package mathx

import "math"

// Mat3 is a row-major 3×3 matrix.
type Mat3 [9]float64

// Mat4 is a row-major 4×4 matrix.
type Mat4 [16]float64

// Mat3Identity returns the 3×3 identity.
func Mat3Identity() Mat3 { return Mat3{1, 0, 0, 0, 1, 0, 0, 0, 1} }

// At returns element (r, c).
func (m Mat3) At(r, c int) float64 { return m[3*r+c] }

// Set stores v at element (r, c).
func (m *Mat3) Set(r, c int, v float64) { m[3*r+c] = v }

// Mul returns m * n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var out Mat3
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m[3*r+k] * n[3*k+c]
			}
			out[3*r+c] = s
		}
	}
	return out
}

// MulVec returns m * v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		m[3]*v.X + m[4]*v.Y + m[5]*v.Z,
		m[6]*v.X + m[7]*v.Y + m[8]*v.Z,
	}
}

// Transpose returns mᵀ.
func (m Mat3) Transpose() Mat3 {
	return Mat3{
		m[0], m[3], m[6],
		m[1], m[4], m[7],
		m[2], m[5], m[8],
	}
}

// Scale returns m * s element-wise.
func (m Mat3) Scale(s float64) Mat3 {
	var out Mat3
	for i := range m {
		out[i] = m[i] * s
	}
	return out
}

// Add returns m + n element-wise.
func (m Mat3) Add(n Mat3) Mat3 {
	var out Mat3
	for i := range m {
		out[i] = m[i] + n[i]
	}
	return out
}

// Det returns the determinant.
func (m Mat3) Det() float64 {
	return m[0]*(m[4]*m[8]-m[5]*m[7]) -
		m[1]*(m[3]*m[8]-m[5]*m[6]) +
		m[2]*(m[3]*m[7]-m[4]*m[6])
}

// Inverse returns m⁻¹ and whether the matrix was invertible.
func (m Mat3) Inverse() (Mat3, bool) {
	d := m.Det()
	if math.Abs(d) < 1e-300 {
		return Mat3Identity(), false
	}
	inv := 1 / d
	return Mat3{
		(m[4]*m[8] - m[5]*m[7]) * inv,
		(m[2]*m[7] - m[1]*m[8]) * inv,
		(m[1]*m[5] - m[2]*m[4]) * inv,
		(m[5]*m[6] - m[3]*m[8]) * inv,
		(m[0]*m[8] - m[2]*m[6]) * inv,
		(m[2]*m[3] - m[0]*m[5]) * inv,
		(m[3]*m[7] - m[4]*m[6]) * inv,
		(m[1]*m[6] - m[0]*m[7]) * inv,
		(m[0]*m[4] - m[1]*m[3]) * inv,
	}, true
}

// Skew returns the skew-symmetric cross-product matrix [v]ₓ.
func Skew(v Vec3) Mat3 {
	return Mat3{
		0, -v.Z, v.Y,
		v.Z, 0, -v.X,
		-v.Y, v.X, 0,
	}
}

// Quat converts a rotation matrix to a unit quaternion (Shepperd's method).
func (m Mat3) Quat() Quat {
	tr := m[0] + m[4] + m[8]
	var q Quat
	switch {
	case tr > 0:
		s := math.Sqrt(tr+1) * 2
		q = Quat{W: s / 4, X: (m[7] - m[5]) / s, Y: (m[2] - m[6]) / s, Z: (m[3] - m[1]) / s}
	case m[0] > m[4] && m[0] > m[8]:
		s := math.Sqrt(1+m[0]-m[4]-m[8]) * 2
		q = Quat{W: (m[7] - m[5]) / s, X: s / 4, Y: (m[1] + m[3]) / s, Z: (m[2] + m[6]) / s}
	case m[4] > m[8]:
		s := math.Sqrt(1+m[4]-m[0]-m[8]) * 2
		q = Quat{W: (m[2] - m[6]) / s, X: (m[1] + m[3]) / s, Y: s / 4, Z: (m[5] + m[7]) / s}
	default:
		s := math.Sqrt(1+m[8]-m[0]-m[4]) * 2
		q = Quat{W: (m[3] - m[1]) / s, X: (m[2] + m[6]) / s, Y: (m[5] + m[7]) / s, Z: s / 4}
	}
	return q.Normalized()
}

// Mat4Identity returns the 4×4 identity.
func Mat4Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// At returns element (r, c).
func (m Mat4) At(r, c int) float64 { return m[4*r+c] }

// Set stores v at element (r, c).
func (m *Mat4) Set(r, c int, v float64) { m[4*r+c] = v }

// Mul returns m * n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += m[4*r+k] * n[4*k+c]
			}
			out[4*r+c] = s
		}
	}
	return out
}

// MulVec returns m * v.
func (m Mat4) MulVec(v Vec4) Vec4 {
	return Vec4{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3]*v.W,
		m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7]*v.W,
		m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11]*v.W,
		m[12]*v.X + m[13]*v.Y + m[14]*v.Z + m[15]*v.W,
	}
}

// MulPoint transforms a 3D point (w=1) and performs perspective division.
func (m Mat4) MulPoint(p Vec3) Vec3 {
	return m.MulVec(Vec4{p.X, p.Y, p.Z, 1}).PerspectiveDivide()
}

// MulDir transforms a direction (w=0).
func (m Mat4) MulDir(d Vec3) Vec3 {
	return m.MulVec(Vec4{d.X, d.Y, d.Z, 0}).Vec3()
}

// Transpose returns mᵀ.
func (m Mat4) Transpose() Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			out[4*c+r] = m[4*r+c]
		}
	}
	return out
}

// Perspective builds a right-handed OpenGL-style projection matrix.
// fovY is the vertical field of view in radians.
func Perspective(fovY, aspect, near, far float64) Mat4 {
	f := 1 / math.Tan(fovY/2)
	return Mat4{
		f / aspect, 0, 0, 0,
		0, f, 0, 0,
		0, 0, (far + near) / (near - far), 2 * far * near / (near - far),
		0, 0, -1, 0,
	}
}

// LookAt builds a right-handed view matrix from eye toward center with the
// given up vector.
func LookAt(eye, center, up Vec3) Mat4 {
	f := center.Sub(eye).Normalized()
	s := f.Cross(up.Normalized()).Normalized()
	u := s.Cross(f)
	return Mat4{
		s.X, s.Y, s.Z, -s.Dot(eye),
		u.X, u.Y, u.Z, -u.Dot(eye),
		-f.X, -f.Y, -f.Z, f.Dot(eye),
		0, 0, 0, 1,
	}
}

// Mat4FromRotTrans assembles a rigid transform matrix from rotation R and
// translation t.
func Mat4FromRotTrans(r Mat3, t Vec3) Mat4 {
	return Mat4{
		r[0], r[1], r[2], t.X,
		r[3], r[4], r[5], t.Y,
		r[6], r[7], r[8], t.Z,
		0, 0, 0, 1,
	}
}
