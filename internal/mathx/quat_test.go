package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomQuat(rng *rand.Rand) Quat {
	return Quat{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Normalized()
}

func TestQuatIdentityRotate(t *testing.T) {
	v := Vec3{1, 2, 3}
	if got := QuatIdentity().Rotate(v); !vecApprox(got, v, tol) {
		t.Errorf("identity rotate = %v", got)
	}
}

func TestQuatAxisAngle90(t *testing.T) {
	q := QuatFromAxisAngle(Vec3{Z: 1}, math.Pi/2)
	got := q.Rotate(Vec3{1, 0, 0})
	if !vecApprox(got, Vec3{0, 1, 0}, tol) {
		t.Errorf("rotate x by 90 about z = %v, want y", got)
	}
}

func TestQuatMulComposition(t *testing.T) {
	// Rotating 90° about Z twice equals 180° about Z.
	q := QuatFromAxisAngle(Vec3{Z: 1}, math.Pi/2)
	q2 := q.Mul(q)
	got := q2.Rotate(Vec3{1, 0, 0})
	if !vecApprox(got, Vec3{-1, 0, 0}, tol) {
		t.Errorf("180 rotate = %v", got)
	}
}

func TestQuatInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		q := randomQuat(rng)
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		back := q.Inverse().Rotate(q.Rotate(v))
		if !vecApprox(back, v, 1e-9*(1+v.Norm())) {
			t.Fatalf("inverse rotate mismatch: %v vs %v", back, v)
		}
	}
}

func TestQuatRotationMatrixAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		q := randomQuat(rng)
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		a := q.Rotate(v)
		b := q.RotationMatrix().MulVec(v)
		if !vecApprox(a, b, 1e-9*(1+v.Norm())) {
			t.Fatalf("matrix disagrees: %v vs %v", a, b)
		}
	}
}

func TestMat3QuatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		q := randomQuat(rng)
		q2 := q.RotationMatrix().Quat().Canonical()
		// q and -q represent the same rotation; Canonical() fixes sign.
		d := q.Canonical()
		if !approx(d.W, q2.W, 1e-8) || !approx(d.X, q2.X, 1e-8) ||
			!approx(d.Y, q2.Y, 1e-8) || !approx(d.Z, q2.Z, 1e-8) {
			t.Fatalf("roundtrip %v -> %v", d, q2)
		}
	}
}

func TestSlerpEndpointsAndMidpoint(t *testing.T) {
	a := QuatIdentity()
	b := QuatFromAxisAngle(Vec3{Z: 1}, math.Pi/2)
	if got := a.Slerp(b, 0); got.AngleTo(a) > 1e-9 {
		t.Errorf("slerp 0 = %v", got)
	}
	if got := a.Slerp(b, 1); got.AngleTo(b) > 1e-9 {
		t.Errorf("slerp 1 = %v", got)
	}
	mid := a.Slerp(b, 0.5)
	want := QuatFromAxisAngle(Vec3{Z: 1}, math.Pi/4)
	if mid.AngleTo(want) > 1e-9 {
		t.Errorf("slerp 0.5 = %v", mid)
	}
}

func TestSlerpShortPath(t *testing.T) {
	a := QuatFromAxisAngle(Vec3{Z: 1}, 0.1)
	b := QuatFromAxisAngle(Vec3{Z: 1}, 0.2)
	bNeg := Quat{-b.W, -b.X, -b.Y, -b.Z} // same rotation, opposite sign
	mid := a.Slerp(bNeg, 0.5)
	want := QuatFromAxisAngle(Vec3{Z: 1}, 0.15)
	if mid.AngleTo(want) > 1e-9 {
		t.Errorf("short path violated: %v", mid)
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		w := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Scale(0.5)
		got := ExpMap(w).LogMap()
		if !vecApprox(got, w, 1e-8) {
			t.Fatalf("exp/log roundtrip: %v -> %v", w, got)
		}
	}
}

func TestExpMapSmallAngle(t *testing.T) {
	w := Vec3{1e-14, 0, 0}
	q := ExpMap(w)
	if !approx(q.Norm(), 1, tol) {
		t.Errorf("small-angle exp not unit: %v", q.Norm())
	}
}

func TestAngleTo(t *testing.T) {
	a := QuatIdentity()
	b := QuatFromAxisAngle(Vec3{Y: 1}, 0.3)
	if got := a.AngleTo(b); !approx(got, 0.3, 1e-9) {
		t.Errorf("AngleTo = %v", got)
	}
}

func TestDerivQuatMatchesOmega(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 100; i++ {
		q := randomQuat(rng)
		w := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		d := DerivQuat(q, w)
		// compare with ½ Ω(ω) q
		om := Omega(w)
		qv := Vec4{q.W, q.X, q.Y, q.Z}
		ref := om.MulVec(qv).Scale(0.5)
		if !approx(d.W, ref.X, 1e-9) || !approx(d.X, ref.Y, 1e-9) ||
			!approx(d.Y, ref.Z, 1e-9) || !approx(d.Z, ref.W, 1e-9) {
			t.Fatalf("DerivQuat %v != Omega %v", d, ref)
		}
	}
}

func TestQuatNormalizedProperty(t *testing.T) {
	f := func(w, x, y, z float64) bool {
		q := Quat{clampInput(w), clampInput(x), clampInput(y), clampInput(z)}
		n := q.Normalized()
		c := q.Canonical()
		return approx(n.Norm(), 1, 1e-9) && c.W >= 0 && approx(c.Norm(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuatFromEuler(t *testing.T) {
	// Pure yaw: x-axis maps into the XY plane.
	q := QuatFromEuler(math.Pi/2, 0, 0)
	got := q.Rotate(Vec3{1, 0, 0})
	if !vecApprox(got, Vec3{0, 1, 0}, tol) {
		t.Errorf("yaw90 x = %v", got)
	}
}
