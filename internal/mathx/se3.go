package mathx

// Pose is a rigid-body transform (element of SE(3)): the rotation and
// position of a body frame expressed in a world frame. Applying a Pose maps
// body-frame coordinates to world-frame coordinates.
type Pose struct {
	Pos Vec3
	Rot Quat
}

// PoseIdentity returns the identity transform.
func PoseIdentity() Pose { return Pose{Rot: QuatIdentity()} }

// Apply maps a body-frame point into the world frame.
func (p Pose) Apply(v Vec3) Vec3 { return p.Rot.Rotate(v).Add(p.Pos) }

// ApplyDir rotates a body-frame direction into the world frame.
func (p Pose) ApplyDir(v Vec3) Vec3 { return p.Rot.Rotate(v) }

// Inverse returns the inverse transform (world → body).
func (p Pose) Inverse() Pose {
	ri := p.Rot.Inverse()
	return Pose{Pos: ri.Rotate(p.Pos.Neg()), Rot: ri}
}

// Compose returns p ∘ q: the transform that applies q first, then p.
func (p Pose) Compose(q Pose) Pose {
	return Pose{
		Pos: p.Rot.Rotate(q.Pos).Add(p.Pos),
		Rot: p.Rot.Mul(q.Rot).Normalized(),
	}
}

// Delta returns the relative transform from p to q: p.Compose(Delta) == q.
func (p Pose) Delta(q Pose) Pose { return p.Inverse().Compose(q) }

// Matrix returns the 4×4 homogeneous matrix of the transform.
func (p Pose) Matrix() Mat4 {
	return Mat4FromRotTrans(p.Rot.RotationMatrix(), p.Pos)
}

// ViewMatrix returns the world→body matrix (the inverse transform), the
// conventional "view matrix" when the pose is a camera/head pose.
func (p Pose) ViewMatrix() Mat4 { return p.Inverse().Matrix() }

// Interpolate blends two poses: position by linear interpolation, rotation
// by slerp. t=0 yields p, t=1 yields q.
func (p Pose) Interpolate(q Pose, t float64) Pose {
	return Pose{
		Pos: p.Pos.Lerp(q.Pos, t),
		Rot: p.Rot.Slerp(q.Rot, t),
	}
}

// TranslationDistance returns the Euclidean distance between the positions
// of p and q.
func (p Pose) TranslationDistance(q Pose) float64 { return p.Pos.Sub(q.Pos).Norm() }

// RotationDistance returns the rotation angle (radians) between the
// orientations of p and q.
func (p Pose) RotationDistance(q Pose) float64 { return p.Rot.AngleTo(q.Rot) }
