package mathx

import "math"

// Quat is a unit quaternion representing a rotation, stored as
// w + xi + yj + zk (Hamilton convention, active rotation).
type Quat struct{ W, X, Y, Z float64 }

// QuatIdentity returns the identity rotation.
func QuatIdentity() Quat { return Quat{W: 1} }

// QuatFromAxisAngle builds a quaternion rotating by angle (radians) about
// the given axis. The axis need not be normalized.
func QuatFromAxisAngle(axis Vec3, angle float64) Quat {
	a := axis.Normalized()
	s, c := math.Sincos(angle / 2)
	return Quat{W: c, X: a.X * s, Y: a.Y * s, Z: a.Z * s}
}

// QuatFromEuler builds a quaternion from intrinsic yaw (Z), pitch (Y),
// roll (X) angles in radians, applied in Z-Y-X order.
func QuatFromEuler(yaw, pitch, roll float64) Quat {
	qz := QuatFromAxisAngle(Vec3{Z: 1}, yaw)
	qy := QuatFromAxisAngle(Vec3{Y: 1}, pitch)
	qx := QuatFromAxisAngle(Vec3{X: 1}, roll)
	return qz.Mul(qy).Mul(qx)
}

// Mul returns the Hamilton product q * p (apply p first, then q).
func (q Quat) Mul(p Quat) Quat {
	return Quat{
		W: q.W*p.W - q.X*p.X - q.Y*p.Y - q.Z*p.Z,
		X: q.W*p.X + q.X*p.W + q.Y*p.Z - q.Z*p.Y,
		Y: q.W*p.Y - q.X*p.Z + q.Y*p.W + q.Z*p.X,
		Z: q.W*p.Z + q.X*p.Y - q.Y*p.X + q.Z*p.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{q.W, -q.X, -q.Y, -q.Z} }

// Inverse returns the rotation inverse. For unit quaternions this equals
// the conjugate.
func (q Quat) Inverse() Quat {
	n := q.NormSq()
	if n == 0 {
		return QuatIdentity()
	}
	c := q.Conj()
	return Quat{c.W / n, c.X / n, c.Y / n, c.Z / n}
}

// NormSq returns the squared norm.
func (q Quat) NormSq() float64 { return q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z }

// Norm returns the quaternion norm.
func (q Quat) Norm() float64 { return math.Sqrt(q.NormSq()) }

// Normalized returns q scaled to unit norm. The sign of the quaternion is
// preserved: integrators rely on the quaternion path being continuous, so
// the double-cover ambiguity is deliberately NOT resolved here (use
// Canonical for a sign-canonical representative). NaN components and the
// zero quaternion normalize to identity; huge or subnormal quaternions
// whose squared norm over/underflows are rescaled by their largest
// component first, so every finite nonzero input yields a unit result.
func (q Quat) Normalized() Quat {
	n := q.Norm()
	if math.IsNaN(n) {
		return QuatIdentity()
	}
	if n == 0 || math.IsInf(n, 1) {
		// NormSq over/underflowed. Dividing by the largest component
		// magnitude brings the components into [-1, 1] without touching the
		// numerics of the common path above.
		m := math.Max(math.Max(math.Abs(q.W), math.Abs(q.X)),
			math.Max(math.Abs(q.Y), math.Abs(q.Z)))
		if m == 0 || math.IsInf(m, 1) {
			return QuatIdentity()
		}
		return Quat{q.W / m, q.X / m, q.Y / m, q.Z / m}.Normalized()
	}
	inv := 1 / n
	return Quat{q.W * inv, q.X * inv, q.Y * inv, q.Z * inv}
}

// Canonical returns the unit quaternion with W >= 0 representing the same
// rotation — a canonical representative for comparisons and hashing.
func (q Quat) Canonical() Quat {
	n := q.Normalized()
	if n.W < 0 {
		return Quat{-n.W, -n.X, -n.Y, -n.Z}
	}
	return n
}

// Rotate applies the rotation to vector v.
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = v + 2*u × (u × v + w*v), u = (x,y,z)
	u := Vec3{q.X, q.Y, q.Z}
	t := u.Cross(v).Add(v.Scale(q.W)) // u×v + w v
	return v.Add(u.Cross(t).Scale(2))
}

// RotationMatrix converts q to a 3×3 rotation matrix.
func (q Quat) RotationMatrix() Mat3 {
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat3{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y),
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x),
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y),
	}
}

// Slerp spherically interpolates from q (t=0) to p (t=1).
func (q Quat) Slerp(p Quat, t float64) Quat {
	cosTheta := q.W*p.W + q.X*p.X + q.Y*p.Y + q.Z*p.Z
	if cosTheta < 0 { // take the short path
		p = Quat{-p.W, -p.X, -p.Y, -p.Z}
		cosTheta = -cosTheta
	}
	if cosTheta > 0.9995 { // nearly parallel: lerp + normalize
		return Quat{
			q.W + t*(p.W-q.W),
			q.X + t*(p.X-q.X),
			q.Y + t*(p.Y-q.Y),
			q.Z + t*(p.Z-q.Z),
		}.Normalized()
	}
	theta := math.Acos(Clamp(cosTheta, -1, 1))
	sinTheta := math.Sin(theta)
	a := math.Sin((1-t)*theta) / sinTheta
	b := math.Sin(t*theta) / sinTheta
	return Quat{
		a*q.W + b*p.W,
		a*q.X + b*p.X,
		a*q.Y + b*p.Y,
		a*q.Z + b*p.Z,
	}.Normalized()
}

// AngleTo returns the rotation angle (radians, in [0, π]) between q and p.
func (q Quat) AngleTo(p Quat) float64 {
	d := q.Inverse().Mul(p).Normalized()
	return 2 * math.Acos(Clamp(math.Abs(d.W), -1, 1))
}

// ExpMap converts a rotation vector (axis * angle) to a quaternion.
func ExpMap(w Vec3) Quat {
	angle := w.Norm()
	if angle < 1e-12 {
		// first-order expansion keeps derivatives smooth near zero
		return Quat{W: 1, X: w.X / 2, Y: w.Y / 2, Z: w.Z / 2}.Normalized()
	}
	return QuatFromAxisAngle(w, angle)
}

// LogMap converts a unit quaternion to its rotation vector (the smallest
// rotation, i.e. the sign-canonical branch).
func (q Quat) LogMap() Vec3 {
	qn := q.Canonical()
	v := Vec3{qn.X, qn.Y, qn.Z}
	s := v.Norm()
	if s < 1e-12 {
		return v.Scale(2)
	}
	angle := 2 * math.Atan2(s, qn.W)
	return v.Scale(angle / s)
}

// Omega returns the 4×4 Ω(ω) matrix used in quaternion kinematics
// q̇ = ½ Ω(ω) q with q stored as (w, x, y, z).
func Omega(w Vec3) Mat4 {
	return Mat4{
		0, -w.X, -w.Y, -w.Z,
		w.X, 0, w.Z, -w.Y,
		w.Y, -w.Z, 0, w.X,
		w.Z, w.Y, -w.X, 0,
	}
}

// DerivQuat computes q̇ = ½ Ω(ω) q as a (non-unit) quaternion.
func DerivQuat(q Quat, w Vec3) Quat {
	return Quat{
		W: 0.5 * (-w.X*q.X - w.Y*q.Y - w.Z*q.Z),
		X: 0.5 * (w.X*q.W + w.Z*q.Y - w.Y*q.Z),
		Y: 0.5 * (w.Y*q.W - w.Z*q.X + w.X*q.Z),
		Z: 0.5 * (w.Z*q.W + w.Y*q.X - w.X*q.Y),
	}
}
