package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	// sorted[lo] + frac*(hi-lo) rather than a two-sided weighted sum:
	// (1-frac)+frac can differ from 1 by an ulp, which pushes the result
	// outside [sorted[lo], sorted[hi]] when the two order statistics are
	// equal (e.g. a series of identical subnormals).
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// Min returns the smallest value in xs (0 for empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs (0 for empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// CoefficientOfVariation returns StdDev/Mean (0 if the mean is 0).
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// RMSE returns the root-mean-square of xs.
func RMSE(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Chi2Threshold95 returns the 95 % quantile of the chi-squared distribution
// with dof degrees of freedom, via the Wilson–Hilferty approximation. The
// MSCKF update uses it as the Mahalanobis gating threshold.
func Chi2Threshold95(dof int) float64 {
	if dof <= 0 {
		return 0
	}
	// exact small-dof values for accuracy where gating is most sensitive
	table := []float64{3.841, 5.991, 7.815, 9.488, 11.070, 12.592, 14.067,
		15.507, 16.919, 18.307, 19.675, 21.026, 22.362, 23.685, 24.996,
		26.296, 27.587, 28.869, 30.144, 31.410}
	if dof <= len(table) {
		return table[dof-1]
	}
	k := float64(dof)
	z := 1.6449 // 95 % normal quantile
	h := 1 - 2.0/(9*k)
	x := h + z*math.Sqrt(2.0/(9*k))
	return k * x * x * x
}
