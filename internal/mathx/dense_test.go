package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randSPD builds a random symmetric positive-definite matrix AᵀA + εI.
func randSPD(rng *rand.Rand, n int) *Mat {
	a := randMat(rng, n, n)
	spd := a.T().MulMat(a)
	for i := 0; i < n; i++ {
		spd.Data[i*n+i] += 0.5
	}
	return spd
}

func matApprox(a, b *Mat, eps float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > eps {
			return false
		}
	}
	return true
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 4, 6)
	if got := Eye(4).MulMat(a); !matApprox(got, a, tol) {
		t.Error("I*A != A")
	}
	if got := a.MulMat(Eye(6)); !matApprox(got, a, tol) {
		t.Error("A*I != A")
	}
}

func TestMatTransposeTwice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 5, 3)
	if !matApprox(a.T().T(), a, 0) {
		t.Error("transpose twice != original")
	}
}

func TestMatMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 3, 4)
	b := randMat(rng, 4, 5)
	c := randMat(rng, 5, 2)
	left := a.MulMat(b).MulMat(c)
	right := a.MulMat(b.MulMat(c))
	if !matApprox(left, right, 1e-10) {
		t.Error("(AB)C != A(BC)")
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 5, 12} {
		spd := randSPD(rng, n)
		l, ok := spd.Cholesky()
		if !ok {
			t.Fatalf("n=%d: SPD matrix rejected", n)
		}
		if !matApprox(l.MulMat(l.T()), spd, 1e-8) {
			t.Fatalf("n=%d: L Lᵀ != A", n)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := NewMatFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, ok := m.Cholesky(); ok {
		t.Error("indefinite matrix accepted")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 3, 8} {
		spd := randSPD(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := spd.MulVecN(want)
		got, ok := spd.CholeskySolve(b)
		if !ok {
			t.Fatalf("n=%d: solve failed", n)
		}
		for i := range want {
			if !approx(got[i], want[i], 1e-7) {
				t.Fatalf("n=%d: x[%d]=%v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 4, 10} {
		a := randMat(rng, n, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVecN(want)
		got, ok := a.LUSolve(b)
		if !ok {
			t.Fatalf("n=%d: LU solve failed", n)
		}
		for i := range want {
			if !approx(got[i], want[i], 1e-6) {
				t.Fatalf("n=%d: x[%d]=%v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestLUSolveSingular(t *testing.T) {
	a := NewMatFrom(2, 2, []float64{1, 2, 2, 4})
	if _, ok := a.LUSolve([]float64{1, 2}); ok {
		t.Error("singular matrix accepted")
	}
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][2]int{{4, 4}, {8, 3}, {10, 6}} {
		a := randMat(rng, shape[0], shape[1])
		q, r := a.QR()
		if !matApprox(q.MulMat(r), a, 1e-8) {
			t.Fatalf("%v: QR != A", shape)
		}
		// Q orthonormal columns
		qtq := q.T().MulMat(q)
		if !matApprox(qtq, Eye(shape[1]), 1e-8) {
			t.Fatalf("%v: QᵀQ != I", shape)
		}
		// R upper triangular
		for i := 0; i < r.Rows; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(r.At(i, j)) > 1e-9 {
					t.Fatalf("%v: R not triangular at (%d,%d)", shape, i, j)
				}
			}
		}
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, shape := range [][2]int{{3, 3}, {6, 4}, {4, 6}, {10, 2}} {
		a := randMat(rng, shape[0], shape[1])
		u, s, v := a.SVD()
		// rebuild
		k := len(s)
		us := NewMat(u.Rows, k)
		for r := 0; r < u.Rows; r++ {
			for c := 0; c < k; c++ {
				us.Set(r, c, u.At(r, c)*s[c])
			}
		}
		rec := us.MulMat(v.T())
		if !matApprox(rec, a, 1e-7) {
			t.Fatalf("%v: U S Vᵀ != A", shape)
		}
		// singular values sorted descending and non-negative
		for i := 1; i < k; i++ {
			if s[i] > s[i-1]+1e-12 || s[i] < 0 {
				t.Fatalf("%v: singular values unsorted: %v", shape, s)
			}
		}
	}
}

func TestNullspace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMat(rng, 8, 3)
	n := a.Nullspace()
	if n.Rows != 8 || n.Cols != 5 {
		t.Fatalf("nullspace shape %dx%d", n.Rows, n.Cols)
	}
	// Nᵀ A ≈ 0
	prod := n.T().MulMat(a)
	if prod.MaxAbs() > 1e-8 {
		t.Errorf("NᵀA max abs = %v", prod.MaxAbs())
	}
	// columns orthonormal
	if !matApprox(n.T().MulMat(n), Eye(5), 1e-8) {
		t.Error("nullspace columns not orthonormal")
	}
}

func TestBlockOps(t *testing.T) {
	m := NewMat(4, 4)
	sub := NewMatFrom(2, 2, []float64{1, 2, 3, 4})
	m.SetBlock(1, 2, sub)
	if m.At(1, 2) != 1 || m.At(2, 3) != 4 {
		t.Error("SetBlock misplaced")
	}
	got := m.Block(1, 2, 2, 2)
	if !matApprox(got, sub, 0) {
		t.Error("Block readback mismatch")
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewMatFrom(2, 2, []float64{1, 2, 4, 3})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Errorf("symmetrize = %v", m.Data)
	}
}

func TestChi2Threshold(t *testing.T) {
	if !approx(Chi2Threshold95(1), 3.841, 1e-3) {
		t.Errorf("chi2(1) = %v", Chi2Threshold95(1))
	}
	if !approx(Chi2Threshold95(10), 18.307, 1e-3) {
		t.Errorf("chi2(10) = %v", Chi2Threshold95(10))
	}
	// Wilson-Hilferty branch: chi2_0.95(30) ≈ 43.77
	if got := Chi2Threshold95(30); math.Abs(got-43.77) > 0.5 {
		t.Errorf("chi2(30) = %v", got)
	}
	if Chi2Threshold95(0) != 0 {
		t.Error("chi2(0) should be 0")
	}
}

func TestStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !approx(Mean(xs), 3, tol) {
		t.Error("mean")
	}
	if !approx(StdDev(xs), math.Sqrt(2), tol) {
		t.Error("stddev")
	}
	if !approx(Percentile(xs, 50), 3, tol) {
		t.Error("median")
	}
	if !approx(Percentile(xs, 0), 1, tol) || !approx(Percentile(xs, 100), 5, tol) {
		t.Error("percentile extremes")
	}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Error("min/max")
	}
	if !approx(RMSE([]float64{3, 4}), math.Sqrt(12.5), tol) {
		t.Error("rmse")
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Error("empty-slice handling")
	}
}

func TestMat3Inverse(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 50; i++ {
		var m Mat3
		for j := range m {
			m[j] = rng.NormFloat64()
		}
		inv, ok := m.Inverse()
		if !ok {
			continue
		}
		prod := m.Mul(inv)
		id := Mat3Identity()
		for j := range prod {
			if !approx(prod[j], id[j], 1e-8) {
				t.Fatalf("M*M⁻¹ != I: %v", prod)
			}
		}
	}
}

func TestMat4Perspective(t *testing.T) {
	p := Perspective(Deg2Rad(90), 1, 0.1, 100)
	// A point on the near plane straight ahead maps to z = -1 (NDC).
	ndc := p.MulPoint(Vec3{0, 0, -0.1})
	if !approx(ndc.Z, -1, 1e-9) {
		t.Errorf("near-plane z = %v", ndc.Z)
	}
	far := p.MulPoint(Vec3{0, 0, -100})
	if !approx(far.Z, 1, 1e-6) {
		t.Errorf("far-plane z = %v", far.Z)
	}
}

func TestLookAt(t *testing.T) {
	v := LookAt(Vec3{0, 0, 5}, Vec3{}, Vec3{Y: 1})
	// The origin should be 5 units in front of the camera (-Z in view space).
	p := v.MulPoint(Vec3{})
	if !vecApprox(p, Vec3{0, 0, -5}, tol) {
		t.Errorf("lookat origin = %v", p)
	}
}

func TestSkewMatchesCross(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 50; i++ {
		a := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		b := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if !vecApprox(Skew(a).MulVec(b), a.Cross(b), 1e-10) {
			t.Fatal("skew(a)b != a×b")
		}
	}
}

func TestPoseComposeInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		p := Pose{
			Pos: Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
			Rot: randomQuat(rng),
		}
		q := Pose{
			Pos: Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
			Rot: randomQuat(rng),
		}
		// p ∘ p⁻¹ = identity
		id := p.Compose(p.Inverse())
		if id.Pos.Norm() > 1e-9 || id.Rot.AngleTo(QuatIdentity()) > 1e-9 {
			t.Fatalf("p∘p⁻¹ = %+v", id)
		}
		// delta consistency: p ∘ delta = q
		d := p.Delta(q)
		q2 := p.Compose(d)
		if q2.TranslationDistance(q) > 1e-9 || q2.RotationDistance(q) > 1e-9 {
			t.Fatal("delta composition mismatch")
		}
		// apply matches matrix
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if !vecApprox(p.Apply(v), p.Matrix().MulPoint(v), 1e-9) {
			t.Fatal("Apply != Matrix·v")
		}
	}
}

func TestPoseInterpolate(t *testing.T) {
	a := PoseIdentity()
	b := Pose{Pos: Vec3{2, 0, 0}, Rot: QuatFromAxisAngle(Vec3{Z: 1}, 1.0)}
	mid := a.Interpolate(b, 0.5)
	if !vecApprox(mid.Pos, Vec3{1, 0, 0}, tol) {
		t.Errorf("mid pos = %v", mid.Pos)
	}
	if !approx(mid.Rot.AngleTo(QuatIdentity()), 0.5, 1e-9) {
		t.Errorf("mid angle = %v", mid.Rot.AngleTo(QuatIdentity()))
	}
}
