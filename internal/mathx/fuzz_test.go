package mathx

import (
	"math"
	"testing"
)

// FuzzQuatNormalize checks that Normalized maps every input — NaN, ±Inf,
// zero, huge and subnormal included — to a unit quaternion (or identity for
// degenerate inputs) without panicking.
func FuzzQuatNormalize(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(math.NaN(), 1.0, 0.0, 0.0)
	f.Add(1e308, 1e308, 1e308, 1e308) // NormSq overflows
	f.Add(5e-324, 0.0, 0.0, 0.0)      // NormSq underflows
	f.Add(math.Inf(1), 1.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, w, x, y, z float64) {
		q := Quat{W: w, X: x, Y: y, Z: z}.Normalized()
		for _, c := range []float64{q.W, q.X, q.Y, q.Z} {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("Normalized(%v,%v,%v,%v) has non-finite component: %+v", w, x, y, z, q)
			}
		}
		n := q.Norm()
		if math.Abs(n-1) > 1e-9 {
			t.Fatalf("Normalized(%v,%v,%v,%v).Norm() = %v, want 1", w, x, y, z, n)
		}
	})
}

// FuzzSE3 checks the SE(3) group laws on arbitrary finite poses:
// p∘p⁻¹ ≈ identity and Delta(p, p) ≈ identity.
func FuzzSE3(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0)
	f.Add(1.0, -2.0, 3.0, 0.5, 0.5, 0.5, 0.5)
	f.Add(100.0, 0.0, -7.0, 0.2, -0.3, 0.4, 0.1)
	f.Fuzz(func(t *testing.T, px, py, pz, qw, qx, qy, qz float64) {
		for _, v := range []float64{px, py, pz, qw, qx, qy, qz} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				t.Skip("restrict to finite, moderate magnitudes")
			}
		}
		q := Quat{W: qw, X: qx, Y: qy, Z: qz}
		if math.Abs(q.Norm()-1) > 0.5 {
			q = q.Normalized()
		}
		if math.Abs(q.Norm()-1) > 1e-6 {
			t.Skip("degenerate rotation")
		}
		p := Pose{Pos: Vec3{X: px, Y: py, Z: pz}, Rot: q}
		scale := 1.0 + math.Abs(px) + math.Abs(py) + math.Abs(pz)
		round := p.Compose(p.Inverse())
		if d := round.Pos.Norm(); d > 1e-6*scale {
			t.Fatalf("p∘p⁻¹ translation %v exceeds tolerance (pose %+v)", d, p)
		}
		if a := round.Rot.AngleTo(QuatIdentity()); a > 1e-6 {
			t.Fatalf("p∘p⁻¹ rotation angle %v exceeds tolerance (pose %+v)", a, p)
		}
		delta := p.Delta(p)
		if d := delta.Pos.Norm(); d > 1e-6*scale {
			t.Fatalf("Delta(p,p) translation %v exceeds tolerance (pose %+v)", d, p)
		}
		if a := delta.Rot.AngleTo(QuatIdentity()); a > 1e-6 {
			t.Fatalf("Delta(p,p) rotation angle %v exceeds tolerance (pose %+v)", a, p)
		}
	})
}
