// Package mathx provides the mathematical substrate shared by all ILLIXR
// components: small fixed-size vectors and matrices for geometry,
// quaternions and SE(3) transforms for poses, and general dense linear
// algebra (LU, Cholesky, QR, Jacobi SVD, Gauss-Newton) used by the VIO and
// scene-reconstruction components.
package mathx

import "math"

// Vec2 is a 2-component double-precision vector.
type Vec2 struct{ X, Y float64 }

// Vec3 is a 3-component double-precision vector.
type Vec3 struct{ X, Y, Z float64 }

// Vec4 is a 4-component double-precision vector.
type Vec4 struct{ X, Y, Z, W float64 }

// Add returns v + u.
func (v Vec2) Add(u Vec2) Vec2 { return Vec2{v.X + u.X, v.Y + u.Y} }

// Sub returns v - u.
func (v Vec2) Sub(u Vec2) Vec2 { return Vec2{v.X - u.X, v.Y - u.Y} }

// Scale returns v * s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and u.
func (v Vec2) Dot(u Vec2) float64 { return v.X*u.X + v.Y*u.Y }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Add returns v + u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v - u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Mul returns the component-wise product of v and u.
func (v Vec3) Mul(u Vec3) Vec3 { return Vec3{v.X * u.X, v.Y * u.Y, v.Z * u.Z} }

// Dot returns the dot product of v and u.
func (v Vec3) Dot(u Vec3) float64 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Cross returns the cross product v × u.
func (v Vec3) Cross(u Vec3) Vec3 {
	return Vec3{
		v.Y*u.Z - v.Z*u.Y,
		v.Z*u.X - v.X*u.Z,
		v.X*u.Y - v.Y*u.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns the squared Euclidean length of v.
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Normalized returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Lerp linearly interpolates between v (t=0) and u (t=1).
func (v Vec3) Lerp(u Vec3, t float64) Vec3 { return v.Add(u.Sub(v).Scale(t)) }

// Elem returns the i-th component (0=X, 1=Y, 2=Z).
func (v Vec3) Elem(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// XY returns the X and Y components as a Vec2.
func (v Vec3) XY() Vec2 { return Vec2{v.X, v.Y} }

// Add returns v + u.
func (v Vec4) Add(u Vec4) Vec4 { return Vec4{v.X + u.X, v.Y + u.Y, v.Z + u.Z, v.W + u.W} }

// Scale returns v * s.
func (v Vec4) Scale(s float64) Vec4 { return Vec4{v.X * s, v.Y * s, v.Z * s, v.W * s} }

// Dot returns the dot product of v and u.
func (v Vec4) Dot(u Vec4) float64 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z + v.W*u.W }

// Vec3 drops the W component.
func (v Vec4) Vec3() Vec3 { return Vec3{v.X, v.Y, v.Z} }

// PerspectiveDivide returns the XYZ components divided by W.
func (v Vec4) PerspectiveDivide() Vec3 {
	if v.W == 0 {
		return Vec3{v.X, v.Y, v.Z}
	}
	return Vec3{v.X / v.W, v.Y / v.W, v.Z / v.W}
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Deg2Rad converts degrees to radians.
func Deg2Rad(d float64) float64 { return d * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(r float64) float64 { return r * 180 / math.Pi }
