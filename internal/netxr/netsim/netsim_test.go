package netsim

import (
	"errors"
	"io"
	"testing"

	"illixr/internal/faults"
)

func TestLinkDeterministic(t *testing.T) {
	for _, p := range Profiles() {
		a := NewLink(p, 7)
		b := NewLink(p, 7)
		for i := 0; i < 1000; i++ {
			sendT := float64(i) * 0.002
			if got, want := a.Arrive(sendT), b.Arrive(sendT); got != want {
				t.Fatalf("%s msg %d: %v != %v", p.Name, i, got, want)
			}
		}
		if a.Sent() != 1000 || a.Lost() != b.Lost() {
			t.Fatalf("%s counters diverge", p.Name)
		}
	}
}

func TestLinkSeedChangesDelays(t *testing.T) {
	p := DefaultProfile() // wifi: has jitter
	a, b := NewLink(p, 1), NewLink(p, 2)
	same := true
	for i := 0; i < 100; i++ {
		if a.Arrive(float64(i)*0.01) != b.Arrive(float64(i)*0.01) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical delay sequences")
	}
}

func TestLinkFIFO(t *testing.T) {
	p := Profile{Name: "t", LatencyMs: 5, JitterMs: 20, LossPct: 10, RetransMs: 50}
	l := NewLink(p, 3)
	prev := -1.0
	for i := 0; i < 5000; i++ {
		arr := l.Arrive(float64(i) * 0.001)
		if arr < prev {
			t.Fatalf("msg %d reordered: %v < %v", i, arr, prev)
		}
		prev = arr
	}
	if l.Lost() == 0 {
		t.Fatal("10%% loss profile lost nothing in 5000 messages")
	}
}

func TestLinkDelayBounds(t *testing.T) {
	p := Profile{Name: "t", LatencyMs: 5, JitterMs: 2, LossPct: 0}
	l := NewLink(p, 9)
	for i := 0; i < 100; i++ {
		sendT := float64(i)
		arr := l.Arrive(sendT)
		d := (arr - sendT) * 1000
		if d < p.LatencyMs || d > p.LatencyMs+p.JitterMs {
			t.Fatalf("delay %vms outside [%v, %v]", d, p.LatencyMs, p.LatencyMs+p.JitterMs)
		}
	}
}

func TestLinkOutage(t *testing.T) {
	p := Profile{Name: "t", LatencyMs: 1, RetransMs: 40}
	l := NewLink(p, 5)
	l.SetOutages([]faults.Window{{Start: 1.0, End: 1.5}})

	before := l.Arrive(0.5)
	if before > 0.6 {
		t.Fatalf("pre-outage message delayed: %v", before)
	}
	during := l.Arrive(1.2)
	// dead link: delivery waits for the window end plus the retrans penalty
	want := 1.5 + (p.LatencyMs+p.RetransMs)/1000
	if during != want {
		t.Fatalf("outage arrival %v, want %v", during, want)
	}
	if l.Lost() != 1 {
		t.Fatalf("lost = %d", l.Lost())
	}
}

func TestProfileByName(t *testing.T) {
	for _, p := range Profiles() {
		got, ok := ProfileByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Fatalf("lookup %s failed", p.Name)
		}
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Fatal("unknown profile resolved")
	}
}

func TestConnFailAfter(t *testing.T) {
	client, server := Pipe()
	defer client.Close()
	defer server.Close()

	go func() {
		buf := make([]byte, 1024)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()

	client.FailAfter(64)
	msg := make([]byte, 32)
	var failed bool
	for i := 0; i < 10; i++ {
		if _, err := client.Write(msg); err != nil {
			if !errors.Is(err, ErrInjectedLinkFailure) {
				t.Fatalf("wrong failure: %v", err)
			}
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("link never failed after budget")
	}
	// the conn is severed, not just erroring: the peer sees EOF
	if _, err := client.Write(msg); !errors.Is(err, ErrInjectedLinkFailure) && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("post-failure write: %v", err)
	}
}

func TestConnCounters(t *testing.T) {
	client, server := Pipe()
	defer client.Close()
	defer server.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 16)
		if _, err := io.ReadFull(server, buf); err != nil {
			t.Errorf("read: %v", err)
		}
	}()
	if _, err := client.Write(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	<-done
	if client.BytesWritten() != 16 || server.BytesRead() != 16 {
		t.Fatalf("counters: wrote %d read %d", client.BytesWritten(), server.BytesRead())
	}
}
