// Package netsim models the network between an XR client and an edge
// server deterministically: a seeded per-message delay process (latency +
// jitter + loss-as-retransmission) expressed in *virtual* session time,
// plus a net.Conn wrapper for driving the real session layer over
// net.Pipe in tests without real sockets.
//
// Determinism is the point (DESIGN.md §9): the delay of message i is a
// pure function of (profile, seed, i), and arrival times are computed in
// virtual time, so the network bench produces byte-identical results for
// a given seed — no wall clocks, no kernel scheduling, no real links.
// Loss on a reliable byte stream does not drop bytes; it manifests as a
// retransmission penalty (RetransMs) added to the delayed message and,
// because the stream is FIFO, to everything queued behind it — exactly
// the head-of-line blocking a TCP-like transport exhibits.
package netsim

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"illixr/internal/faults"
)

// Profile parameterizes one direction of a modelled link.
type Profile struct {
	Name      string  `json:"name"`
	LatencyMs float64 `json:"latency_ms"` // one-way propagation delay
	JitterMs  float64 `json:"jitter_ms"`  // uniform [0, JitterMs) added per message
	LossPct   float64 `json:"loss_pct"`   // chance a message needs a retransmission
	RetransMs float64 `json:"retrans_ms"` // head-of-line penalty per lost message
}

// RTTMs returns the nominal round-trip time of a symmetric link.
func (p Profile) RTTMs() float64 { return 2 * p.LatencyMs }

func (p Profile) String() string {
	return fmt.Sprintf("%s(lat=%.1fms jit=%.1fms loss=%.2f%%)", p.Name, p.LatencyMs, p.JitterMs, p.LossPct)
}

// Profiles returns the named sweep points of the network bench.
func Profiles() []Profile {
	return []Profile{
		{Name: "loopback", LatencyMs: 0.05, JitterMs: 0.01, LossPct: 0, RetransMs: 1},
		{Name: "lan", LatencyMs: 1, JitterMs: 0.2, LossPct: 0, RetransMs: 8},
		{Name: "wifi", LatencyMs: 5, JitterMs: 2, LossPct: 0.5, RetransMs: 30},
		{Name: "metro-edge", LatencyMs: 15, JitterMs: 4, LossPct: 0.5, RetransMs: 60},
		{Name: "regional", LatencyMs: 35, JitterMs: 8, LossPct: 1, RetransMs: 120},
	}
}

// DefaultProfile is the bench and netcheck default: a good home Wi-Fi
// link to a nearby edge.
func DefaultProfile() Profile { return Profiles()[2] }

// ProfileByName looks a sweep profile up by name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// splitmix64 advances a 64-bit state and returns a mixed output — the
// same tiny deterministic generator internal/faults uses.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Link is one direction of a modelled connection: a deterministic
// delay process plus FIFO ordering. Arrive maps a virtual send time to a
// virtual arrival time; successive calls model successive messages, and
// arrivals never reorder (head-of-line blocking). Not safe for
// concurrent use — each direction has exactly one sender.
type Link struct {
	Profile Profile
	state   uint64
	lastArr float64 // arrival time of the previous message
	sent    uint64
	lost    uint64
	outages []faults.Window
}

// NewLink creates the delay process for one direction.
func NewLink(p Profile, seed int64) *Link {
	return &Link{Profile: p, state: uint64(seed)*0x9E3779B97F4A7C15 + 0x1F83D9ABFB41BD6B}
}

// SetOutages installs link-fault windows (faults.LinkDrop): a message
// sent during [Start, End) stalls until the window ends and then pays the
// retransmission penalty — the link is dead, the transport retries.
func (l *Link) SetOutages(ws []faults.Window) { l.outages = ws }

// Sent returns the number of messages pushed through the link.
func (l *Link) Sent() uint64 { return l.sent }

// Lost returns how many of them drew a retransmission.
func (l *Link) Lost() uint64 { return l.lost }

// Arrive returns the virtual arrival time of a message sent at sendT.
func (l *Link) Arrive(sendT float64) float64 {
	l.sent++
	d := l.Profile.LatencyMs
	if l.Profile.JitterMs > 0 {
		u := float64(splitmix64(&l.state)>>11) / float64(1<<53)
		d += u * l.Profile.JitterMs
	}
	if l.Profile.LossPct > 0 {
		u := 100 * float64(splitmix64(&l.state)>>11) / float64(1<<53)
		if u < l.Profile.LossPct {
			d += l.Profile.RetransMs
			l.lost++
		}
	}
	for _, w := range l.outages {
		if sendT >= w.Start && sendT < w.End {
			// dead link: deliver after the outage plus a retransmission
			sendT = w.End
			d += l.Profile.RetransMs
			l.lost++
			break
		}
	}
	arr := sendT + d/1000
	if arr < l.lastArr {
		arr = l.lastArr // FIFO: no reordering on a stream
	}
	l.lastArr = arr
	return arr
}

// Conn wraps a net.Conn for the real (goroutine-driven) session layer:
// it counts bytes, can kill the link mid-stream after a byte budget
// (exercising dead-session supervision), and can pace writes with a real
// sleep scaled from the profile latency when realDelay is enabled (soak
// realism; off by default so tests stay fast).
type Conn struct {
	net.Conn
	failAfter atomic.Int64 // bytes until forced failure; <0 = never
	wrote     atomic.Int64
	read      atomic.Int64
	realDelay time.Duration
	mu        sync.Mutex
}

// ErrInjectedLinkFailure is returned by writes after the failure budget.
var ErrInjectedLinkFailure = fmt.Errorf("netsim: injected link failure")

// Wrap decorates an existing conn (e.g. one end of net.Pipe).
func Wrap(c net.Conn) *Conn {
	w := &Conn{Conn: c}
	w.failAfter.Store(-1)
	return w
}

// Pipe returns both ends of an in-memory connection wrapped for
// instrumentation, in (client, server) order.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return Wrap(a), Wrap(b)
}

// FailAfter arms an injected link failure after n more written bytes.
func (c *Conn) FailAfter(n int64) { c.failAfter.Store(n) }

// SetRealDelay makes every write sleep d first (wall-clock pacing for
// soak tests; leaves virtual-time accounting untouched).
func (c *Conn) SetRealDelay(d time.Duration) { c.realDelay = d }

// BytesWritten returns the total bytes successfully written.
func (c *Conn) BytesWritten() int64 { return c.wrote.Load() }

// BytesRead returns the total bytes read.
func (c *Conn) BytesRead() int64 { return c.read.Load() }

// Write implements net.Conn with failure injection and optional pacing.
func (c *Conn) Write(p []byte) (int, error) {
	if budget := c.failAfter.Load(); budget >= 0 {
		if budget == 0 || c.failAfter.Add(-int64(len(p))) < 0 {
			_ = c.Conn.Close()
			return 0, ErrInjectedLinkFailure
		}
	}
	if c.realDelay > 0 {
		time.Sleep(c.realDelay)
	}
	c.mu.Lock()
	n, err := c.Conn.Write(p)
	c.mu.Unlock()
	c.wrote.Add(int64(n))
	return n, err
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read.Add(int64(n))
	return n, err
}
