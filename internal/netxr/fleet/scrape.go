package fleet

// Metrics federation: the gateway-side scraper that closes the loop
// between replica telemetry and placement. Each replica's debughttp
// /metrics endpoint exposes its registry as JSON; the Scraper polls
// every target on an interval, folds the scraped values into per-replica
// stats (and gateway-side gauges), and hands the coordinator live
// LoadProbes — so Pick scores replicas by what they are actually doing
// (sessions admitted directly, queue backpressure, competing load) and
// not just by what this coordinator placed. This is the ROADMAP item-1
// gap: the LoadProbe hook existed since PR 6, but nothing fed it.
//
// The fetch step is pluggable: production uses HTTP GET, the bench and
// tests inject a Fetch hook returning synthetic snapshots under virtual
// time — the scrape→fold→probe→Pick pipeline is identical either way.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"illixr/internal/telemetry"
)

// Metric names the scraper extracts from a replica's registry snapshot
// (emitted by internal/netxr/session and internal/netxr/bridge). Exported
// so the bench can synthesize replica snapshots against the same names.
const (
	ScrapeSessionsGauge = "illixr_netxr_sessions_active"
	ScrapeQueueGauge    = "illixr_netxr_queue_depth"
	ScrapeMTPHist       = "illixr_netxr_qoe_mtp_ms"
	ScrapeResumedCtr    = "illixr_netxr_sessions_resumed_total"
	ScrapeRefusedCtr    = "illixr_netxr_admission_refused_total"
)

// ReplicaStats is one replica's last-scraped view, exported in the
// /fleet document.
type ReplicaStats struct {
	ID         int     `json:"replica"`
	Target     string  `json:"target"`
	Status     string  `json:"status"`
	Placed     int     `json:"placed"` // this coordinator's own count
	Sessions   float64 `json:"sessions"`
	QueueDepth float64 `json:"queue_depth"`
	MTPP50Ms   float64 `json:"mtp_p50_ms"`
	MTPP99Ms   float64 `json:"mtp_p99_ms"`
	Resumed    uint64  `json:"resumed"`
	Refused    uint64  `json:"refused"`
	Scrapes    uint64  `json:"scrapes"`
	Failures   uint64  `json:"scrape_failures"`
	LastScrape float64 `json:"last_scrape"` // scraper clock, seconds
	Live       bool    `json:"live"`        // at least one successful scrape
}

// FleetDoc is the aggregated /fleet payload.
type FleetDoc struct {
	Replicas []ReplicaStats `json:"replicas"`
	// Up counts replicas currently Up in the coordinator.
	Up int `json:"up"`
	// Placed/Resumed/Refused are fleet-wide coordinator totals (from the
	// illixr_fleet_* counters when a registry is attached).
	Placed  uint64 `json:"placed_total"`
	Resumed uint64 `json:"resumed_total"`
	Refused uint64 `json:"refused_total"`
}

// ScrapeConfig tunes the scraper. The zero value is usable.
type ScrapeConfig struct {
	// Interval between scrape rounds in Run (0 = 1s).
	Interval time.Duration
	// Timeout bounds each HTTP fetch (0 = Interval, capped at 5s).
	Timeout time.Duration
	// DownAfter marks a replica Down after this many consecutive scrape
	// failures (0 = 3; negative disables Down-marking).
	DownAfter int
	// Metrics receives the folded illixr_fleet_replica_* gauges and
	// scrape counters; nil = uninstrumented.
	Metrics *telemetry.Registry
	// Events receives scrape_fail / down / replica_up flight events.
	Events *telemetry.FlightRecorder
	// Fetch retrieves one target's registry snapshot; nil = HTTP GET of
	// the target URL expecting the /metrics JSON document. The bench
	// injects synthetic snapshots here.
	Fetch func(id int, target string) (telemetry.RegistrySnapshot, error)
	// Now is the scraper clock in seconds; nil = wall clock from start.
	Now func() float64
}

type scrapeState struct {
	target       string
	stats        ReplicaStats
	consecFails  int
	markedDown   bool // we Down-marked it, so we may re-Up it
	sessionsG    *telemetry.Gauge
	queueG       *telemetry.Gauge
	mtpP99G      *telemetry.Gauge
	scrapeFailsC *telemetry.Counter
}

// Scraper polls replica /metrics endpoints and feeds the coordinator's
// placement probes from the results.
type Scraper struct {
	coord *Coordinator
	cfg   ScrapeConfig

	startNow sync.Once
	nowFn    func() float64

	mu      sync.Mutex
	targets map[int]*scrapeState
}

// NewScraper builds a scraper bound to a coordinator.
func NewScraper(coord *Coordinator, cfg ScrapeConfig) *Scraper {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval
		if cfg.Timeout > 5*time.Second {
			cfg.Timeout = 5 * time.Second
		}
	}
	if cfg.DownAfter == 0 {
		cfg.DownAfter = 3
	}
	return &Scraper{coord: coord, cfg: cfg, targets: map[int]*scrapeState{}}
}

func (s *Scraper) now() float64 {
	s.startNow.Do(func() {
		if s.cfg.Now != nil {
			s.nowFn = s.cfg.Now
			return
		}
		start := time.Now()
		s.nowFn = func() float64 { return time.Since(start).Seconds() }
	})
	return s.nowFn()
}

// AddTarget registers a replica's metrics endpoint. Call Probe(id) for
// the LoadProbe to hand coord.AddReplica.
func (s *Scraper) AddTarget(id int, target string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.cfg.Metrics
	name := func(suffix string) string {
		return telemetry.MetricName("fleet", fmt.Sprintf("replica_%d_%s", id, suffix))
	}
	s.targets[id] = &scrapeState{
		target:       target,
		stats:        ReplicaStats{ID: id, Target: target},
		sessionsG:    m.Gauge(name("sessions")),
		queueG:       m.Gauge(name("queue_depth")),
		mtpP99G:      m.Gauge(name("mtp_p99_ms")),
		scrapeFailsC: m.Counter(name("scrape_failures_total")),
	}
}

// Probe returns the live LoadProbe for a replica: the last scraped
// session count and queue depth. Before the first successful scrape it
// reports zero load — the coordinator's own placement counts still apply
// through AdmitOn's capacity check, so a cold probe cannot overfill a
// replica, it just can't see load placed elsewhere yet.
func (s *Scraper) Probe(id int) LoadProbe {
	return func() (int, float64) {
		s.mu.Lock()
		defer s.mu.Unlock()
		st, ok := s.targets[id]
		if !ok || !st.stats.Live {
			return 0, 0
		}
		return int(st.stats.Sessions), st.stats.QueueDepth
	}
}

// fetch retrieves one snapshot, via the hook or HTTP.
func (s *Scraper) fetch(id int, target string) (telemetry.RegistrySnapshot, error) {
	if s.cfg.Fetch != nil {
		return s.cfg.Fetch(id, target)
	}
	client := &http.Client{Timeout: s.cfg.Timeout}
	resp, err := client.Get(target)
	if err != nil {
		return telemetry.RegistrySnapshot{}, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return telemetry.RegistrySnapshot{}, fmt.Errorf("scrape %s: HTTP %d", target, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return telemetry.RegistrySnapshot{}, err
	}
	var snap telemetry.RegistrySnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return telemetry.RegistrySnapshot{}, fmt.Errorf("scrape %s: %w", target, err)
	}
	return snap, nil
}

// ScrapeOnce polls every target once at the given time (the caller's
// clock — virtual under the bench). Deterministic: targets are visited
// in id order.
func (s *Scraper) ScrapeOnce(now float64) {
	s.mu.Lock()
	ids := make([]int, 0, len(s.targets))
	for id := range s.targets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s.mu.Unlock()
	for _, id := range ids {
		s.scrapeTarget(id, now)
	}
}

func (s *Scraper) scrapeTarget(id int, now float64) {
	s.mu.Lock()
	st, ok := s.targets[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	target := st.target
	s.mu.Unlock()

	snap, err := s.fetch(id, target) // outside the lock: fetches can block
	node := fmt.Sprintf("replica-%d", id)

	// Status transitions happen after s.mu is released: Pick holds the
	// coordinator lock while calling probes (which take s.mu), so calling
	// the coordinator under s.mu would invert lock order.
	markDown, markUp := false, false
	s.mu.Lock()
	st.stats.LastScrape = now
	if err != nil {
		st.stats.Failures++
		st.consecFails++
		st.scrapeFailsC.Inc()
		s.cfg.Events.RecordAt(now, telemetry.EventScrapeFail, node, err.Error())
		if s.cfg.DownAfter > 0 && st.consecFails >= s.cfg.DownAfter && !st.markedDown {
			st.markedDown = true
			markDown = true
		}
	} else {
		st.stats.Scrapes++
		st.consecFails = 0
		st.stats.Live = true
		st.stats.Sessions = snap.Gauges[ScrapeSessionsGauge]
		st.stats.QueueDepth = snap.Gauges[ScrapeQueueGauge]
		if h, ok := snap.Histograms[ScrapeMTPHist]; ok {
			st.stats.MTPP50Ms, st.stats.MTPP99Ms = h.P50, h.P99
		}
		st.stats.Resumed = snap.Counters[ScrapeResumedCtr]
		st.stats.Refused = snap.Counters[ScrapeRefusedCtr]
		st.sessionsG.Set(st.stats.Sessions)
		st.queueG.Set(st.stats.QueueDepth)
		st.mtpP99G.Set(st.stats.MTPP99Ms)
		// a replica we Down-marked for scrape failures is answering
		// again: bring it back. Replicas downed by others (dial
		// failures, relay severance) stay down — the scraper only
		// undoes its own marks.
		if st.markedDown {
			st.markedDown = false
			markUp = true
		}
	}
	s.mu.Unlock()
	if markDown && s.coord.StatusOf(id) == Up {
		s.coord.SetStatus(id, Down)
	}
	if markUp && s.coord.StatusOf(id) == Down {
		s.coord.SetStatus(id, Up)
	}
}

// Run scrapes every Interval until the context is cancelled, on the
// scraper's clock. The production loop behind illixr-gateway
// -scrape-interval; the bench calls ScrapeOnce directly instead.
func (s *Scraper) Run(ctx context.Context) {
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.ScrapeOnce(s.now())
		}
	}
}

// FleetDoc aggregates the fleet view for the /fleet endpoint.
func (s *Scraper) FleetDoc() any {
	// copy rows under s.mu only, then annotate from the coordinator: Pick
	// holds the coordinator lock while calling probes (which take s.mu),
	// so holding s.mu across coordinator calls would invert lock order.
	s.mu.Lock()
	rows := make([]ReplicaStats, 0, len(s.targets))
	for _, st := range s.targets {
		rows = append(rows, st.stats)
	}
	s.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	doc := FleetDoc{Replicas: rows}
	for i := range doc.Replicas {
		id := doc.Replicas[i].ID
		doc.Replicas[i].Status = s.coord.StatusOf(id).String()
		doc.Replicas[i].Placed = s.coord.Sessions(id)
		if doc.Replicas[i].Status == Up.String() {
			doc.Up++
		}
	}
	if m := s.coord.cfg.Metrics; m != nil {
		doc.Placed = m.Counter(telemetry.MetricName("fleet", "placed_total")).Value()
		doc.Resumed = m.Counter(telemetry.MetricName("fleet", "resumed_total")).Value()
		doc.Refused = m.Counter(telemetry.MetricName("fleet", "refused_total")).Value()
	}
	return doc
}
