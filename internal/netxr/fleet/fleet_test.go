package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"illixr/internal/netxr/session"
	"illixr/internal/netxr/wire"
	"illixr/internal/sensors"
)

func TestPickLeastLoadedWithQueueWeight(t *testing.T) {
	c := NewCoordinator(Config{ReplicaCapacity: 10, QueueWeight: 4})
	c.AddReplica(0, func() (int, float64) { return 2, 0 })   // score 2
	c.AddReplica(1, func() (int, float64) { return 1, 0.5 }) // score 3: queue repels
	c.AddReplica(2, func() (int, float64) { return 10, 0 })  // full
	id, err := c.Pick(0, wire.Hello{})
	if err != nil || id != 0 {
		t.Fatalf("pick = %d, %v; want replica 0", id, err)
	}

	c.SetStatus(0, Draining)
	if id, _ = c.Pick(0, wire.Hello{}); id != 1 {
		t.Fatalf("pick = %d, want 1 (0 draining, 2 full)", id)
	}
	c.SetStatus(1, Down)
	if _, err = c.Pick(0, wire.Hello{}); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
}

func TestAdmitFreshThenResumeAfterKill(t *testing.T) {
	c := NewCoordinator(Config{ReplicaCapacity: 4, TokenSeed: 9})
	c.AddReplica(0, nil)
	c.AddReplica(1, nil)

	w, err := c.AdmitOn(0, 0, 11, wire.Hello{App: "xr"})
	if err != nil {
		t.Fatal(err)
	}
	if w.ResumeToken == 0 || w.Resumed || w.PoseEpoch != 1 {
		t.Fatalf("fresh welcome = %+v", w)
	}
	if c.Sessions(0) != 1 {
		t.Fatalf("placement count = %d, want 1", c.Sessions(0))
	}
	c.Ack(w.ResumeToken, 640)

	displaced := c.KillReplica(0)
	if len(displaced) != 1 || displaced[0].Token != w.ResumeToken {
		t.Fatalf("displaced = %+v", displaced)
	}

	// the resume Hello routes away from the corpse and restores state
	id, err := c.Pick(1, wire.Hello{ResumeToken: w.ResumeToken})
	if err != nil || id != 1 {
		t.Fatalf("pick = %d, %v; want survivor 1", id, err)
	}
	w2, err := c.AdmitOn(1, 1, 12, wire.Hello{App: "xr", ResumeToken: w.ResumeToken, LastSeq: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !w2.Resumed || w2.ResumeToken != w.ResumeToken || w2.PoseEpoch != 2 || w2.LastAckSeq != 640 {
		t.Fatalf("resume welcome = %+v", w2)
	}
	if c.Sessions(1) != 1 {
		t.Fatalf("survivor count = %d, want 1", c.Sessions(1))
	}

	// terminal departure forgets the token
	c.End(w.ResumeToken)
	if _, err := c.AdmitOn(2, 1, 13, wire.Hello{ResumeToken: w.ResumeToken}); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("err = %v, want ErrUnknownToken", err)
	}
}

func TestResumeBurstLimiter(t *testing.T) {
	c := NewCoordinator(Config{ReplicaCapacity: 64, ResumeBurst: 2, ResumeWindowSec: 1})
	c.AddReplica(0, nil)
	c.AddReplica(1, nil)

	var tokens []uint64
	for i := 0; i < 3; i++ {
		w, err := c.AdmitOn(0, 0, uint64(i), wire.Hello{})
		if err != nil {
			t.Fatal(err)
		}
		tokens = append(tokens, w.ResumeToken)
	}
	c.KillReplica(0)

	// two resumes fit the window; the third is pushed back, retryable
	for i := 0; i < 2; i++ {
		if _, err := c.AdmitOn(5.0, 1, uint64(10+i), wire.Hello{ResumeToken: tokens[i]}); err != nil {
			t.Fatalf("resume %d refused: %v", i, err)
		}
	}
	_, err := c.AdmitOn(5.0, 1, 12, wire.Hello{ResumeToken: tokens[2]})
	var ae *session.AdmissionError
	if !errors.As(err, &ae) || !ae.Retryable() {
		t.Fatalf("err = %v, want retryable AdmissionError", err)
	}
	// past the window the same session gets in
	if _, err := c.AdmitOn(6.5, 1, 12, wire.Hello{ResumeToken: tokens[2]}); err != nil {
		t.Fatalf("post-window resume refused: %v", err)
	}
}

func TestAdmitOnDownReplicaRefused(t *testing.T) {
	c := NewCoordinator(Config{})
	c.AddReplica(0, nil)
	c.SetStatus(0, Down)
	_, err := c.AdmitOn(0, 0, 1, wire.Hello{})
	var ae *session.AdmissionError
	if !errors.As(err, &ae) || !ae.Retryable() {
		t.Fatalf("err = %v, want retryable AdmissionError", err)
	}
}

func TestTokenIssuanceDeterministic(t *testing.T) {
	mk := func() []uint64 {
		c := NewCoordinator(Config{TokenSeed: 123})
		c.AddReplica(0, nil)
		var out []uint64
		for i := 0; i < 5; i++ {
			w, err := c.AdmitOn(0, 0, uint64(i), wire.Hello{})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, w.ResumeToken)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("token stream diverged at %d: %#x vs %#x", i, a[i], b[i])
		}
	}
}

// ---------------------------------------------------------------------------
// Gateway end-to-end: real session servers behind the relay.

// poseOnFrame answers every uplink frame with one latest-wins pose, so
// the test can observe the downlink path through the relay.
type poseOnFrame struct{}

func (poseOnFrame) SessionStart(*session.Session) error { return nil }
func (poseOnFrame) SessionEnd(*session.Session, error)  {}
func (poseOnFrame) SessionFrame(s *session.Session, f wire.Frame) error {
	if f.Type == wire.TypeIMU {
		imu, err := wire.DecodeIMU(f.Payload)
		if err != nil {
			return err
		}
		return s.Send(wire.Frame{Type: wire.TypePose,
			Payload: wire.AppendPose(nil, wire.Pose{T: imu.T})}, session.LatestWins)
	}
	return nil
}

// testFleet wires N real servers behind a gateway over net.Pipe.
type testFleet struct {
	coord *Coordinator
	gw    *Gateway
	srvs  []*session.Server

	mu   sync.Mutex
	down map[int]bool
}

func newTestFleet(t *testing.T, n, capacity int) *testFleet {
	t.Helper()
	tf := &testFleet{down: map[int]bool{}}
	tf.coord = NewCoordinator(Config{ReplicaCapacity: capacity, TokenSeed: 1,
		RetryAfter: 50 * time.Millisecond, ResumeBurst: 64, ResumeWindowSec: 1})
	for i := 0; i < n; i++ {
		srv := session.NewServer(session.Config{IdleTimeout: -1}, poseOnFrame{})
		tf.srvs = append(tf.srvs, srv)
		tf.coord.AddReplica(i, nil)
	}
	tf.gw = &Gateway{Coord: tf.coord, Dial: tf.dial}
	t.Cleanup(func() {
		_ = tf.gw.Shutdown(context.Background())
		for _, s := range tf.srvs {
			_ = s.Shutdown(context.Background())
		}
	})
	return tf
}

func (tf *testFleet) dial(id int) (net.Conn, error) {
	tf.mu.Lock()
	dead := tf.down[id]
	tf.mu.Unlock()
	if dead {
		return nil, fmt.Errorf("replica %d: connection refused", id)
	}
	c, s := net.Pipe()
	if tf.srvs[id].HandleConn(s) == nil {
		_ = c.Close()
		return nil, fmt.Errorf("replica %d: connection refused", id)
	}
	return c, nil
}

// kill crashes a replica the hard way.
func (tf *testFleet) kill(id int) {
	tf.mu.Lock()
	tf.down[id] = true
	tf.mu.Unlock()
	tf.srvs[id].Abort(nil)
	tf.coord.KillReplica(id)
}

// connect opens a client conn through the gateway and handshakes.
func (tf *testFleet) connect(t *testing.T, hello wire.Hello) (net.Conn, *wire.Reader, *wire.Writer, wire.Welcome) {
	t.Helper()
	c, g := net.Pipe()
	tf.gw.HandleConn(g)
	r, w := wire.NewReader(c), wire.NewWriter(c)
	hello.Proto = wire.Version
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeHello,
		Payload: wire.AppendHello(nil, hello)}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatalf("awaiting welcome: %v", err)
	}
	if f.Type == wire.TypeBye {
		b, _ := wire.DecodeBye(f.Payload)
		t.Fatalf("refused: %+v", b)
	}
	wel, err := wire.DecodeWelcome(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return c, r, w, wel
}

func TestGatewayCrashResume(t *testing.T) {
	tf := newTestFleet(t, 2, 8)

	conn, r, w, wel := tf.connect(t, wire.Hello{App: "xr", IMURateHz: 500})
	if wel.ResumeToken == 0 || wel.Resumed {
		t.Fatalf("fresh welcome = %+v", wel)
	}
	placedOn := -1
	for id := range tf.srvs {
		if tf.coord.Sessions(id) == 1 {
			placedOn = id
		}
	}
	if placedOn == -1 {
		t.Fatal("session not placed")
	}

	// uplink flows and poses come back through the relay
	imu := wire.AppendIMU(nil, wireIMU(0.01))
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeIMU, Payload: imu}); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil || f.Type != wire.TypePose {
		t.Fatalf("downlink = %v err %v, want pose", f.Type, err)
	}

	// kill the hosting replica: the client's stream severs without a Bye
	tf.kill(placedOn)
	for {
		f, err := r.ReadFrame()
		if err != nil {
			break
		}
		if f.Type == wire.TypeBye {
			t.Fatal("crash produced a graceful Bye")
		}
	}
	_ = conn.Close()

	// reconnect with the token: placed on the survivor, state restored
	_, r2, w2, wel2 := tf.connect(t, wire.Hello{App: "xr", IMURateHz: 500, ResumeToken: wel.ResumeToken, LastSeq: 1})
	if !wel2.Resumed || wel2.ResumeToken != wel.ResumeToken || wel2.PoseEpoch != 2 {
		t.Fatalf("resume welcome = %+v", wel2)
	}
	survivor := 1 - placedOn
	if tf.coord.Sessions(survivor) != 1 {
		t.Fatalf("survivor sessions = %d, want 1", tf.coord.Sessions(survivor))
	}
	// the resumed session is live end to end
	if err := w2.WriteFrame(wire.Frame{Type: wire.TypeIMU, Payload: imu}); err != nil {
		t.Fatal(err)
	}
	if f, err := r2.ReadFrame(); err != nil || f.Type != wire.TypePose {
		t.Fatalf("post-resume downlink = %v err %v, want pose", f.Type, err)
	}
}

func TestGatewayFleetFullRefusesWithRetryAfter(t *testing.T) {
	tf := newTestFleet(t, 1, 1)
	tf.connect(t, wire.Hello{App: "one"}) // fills the only replica

	c, g := net.Pipe()
	tf.gw.HandleConn(g)
	r, w := wire.NewReader(c), wire.NewWriter(c)
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeHello,
		Payload: wire.AppendHello(nil, wire.Hello{Proto: wire.Version, App: "two"})}); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil || f.Type != wire.TypeBye {
		t.Fatalf("reply = %v err %v, want bye", f.Type, err)
	}
	bye, err := wire.DecodeBye(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bye.Retryable() || bye.Reason != "fleet full" {
		t.Fatalf("bye = %+v, want retryable fleet-full push-back", bye)
	}
}

func TestGatewayDrainMigration(t *testing.T) {
	tf := newTestFleet(t, 2, 8)

	conn, r, _, wel := tf.connect(t, wire.Hello{App: "xr"})
	placedOn := -1
	for id := range tf.srvs {
		if tf.coord.Sessions(id) == 1 {
			placedOn = id
		}
	}

	// graceful drain: the replica's Bye (Retry-After attached) relays to
	// the client — an invitation to resume, not an error
	displaced := tf.coord.DrainReplica(placedOn)
	if len(displaced) != 1 {
		t.Fatalf("displaced = %d, want 1", len(displaced))
	}
	go func() { _ = tf.srvs[placedOn].Shutdown(context.Background()) }()
	var bye wire.Bye
	sawBye := false
	for {
		f, err := r.ReadFrame()
		if err != nil {
			break
		}
		if f.Type == wire.TypeBye {
			bye, _ = wire.DecodeBye(f.Payload)
			sawBye = true
		}
	}
	_ = conn.Close()
	if !sawBye || !bye.Retryable() {
		t.Fatalf("drain bye = %+v (seen=%v), want retryable invitation", bye, sawBye)
	}

	// resume on the survivor
	_, _, _, wel2 := tf.connect(t, wire.Hello{App: "xr", ResumeToken: wel.ResumeToken})
	if !wel2.Resumed || wel2.PoseEpoch != 2 {
		t.Fatalf("post-drain resume = %+v", wel2)
	}
	if tf.coord.Sessions(1-placedOn) != 1 {
		t.Fatal("session did not migrate to the survivor")
	}
}

// wireIMU builds a minimal IMU sample for relay tests.
func wireIMU(ts float64) sensors.IMUSample {
	return sensors.IMUSample{T: ts}
}
