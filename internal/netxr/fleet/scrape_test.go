package fleet

import (
	"errors"
	"fmt"
	"testing"

	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
)

// synthSnapshot builds the registry snapshot a replica's /metrics would
// serve for a given load.
func synthSnapshot(sessions, queue float64) telemetry.RegistrySnapshot {
	reg := telemetry.NewRegistry()
	reg.Gauge(ScrapeSessionsGauge).Set(sessions)
	reg.Gauge(ScrapeQueueGauge).Set(queue)
	h := reg.Histogram(ScrapeMTPHist)
	h.Observe(10)
	h.Observe(20)
	reg.Counter(ScrapeResumedCtr).Add(2)
	return reg.Snapshot()
}

func TestScraperFeedsLivePlacement(t *testing.T) {
	coord := NewCoordinator(Config{ReplicaCapacity: 64})
	load := map[int]struct{ sessions, queue float64 }{
		0: {sessions: 10, queue: 0},
		1: {sessions: 1, queue: 0}, // lightly loaded → placement target
		2: {sessions: 5, queue: 8}, // deep queue repels via QueueWeight
	}
	s := NewScraper(coord, ScrapeConfig{
		Fetch: func(id int, _ string) (telemetry.RegistrySnapshot, error) {
			l := load[id]
			return synthSnapshot(l.sessions, l.queue), nil
		},
	})
	for id := 0; id < 3; id++ {
		s.AddTarget(id, fmt.Sprintf("http://replica-%d/metrics", id))
		coord.AddReplica(id, s.Probe(id))
	}

	// before any scrape every probe reads zero: placement falls back to
	// "all equal" and must still succeed (lowest id wins ties)
	if id, err := coord.Pick(0, wire.Hello{}); err != nil || id != 0 {
		t.Fatalf("cold pick = %d, %v; want 0", id, err)
	}

	s.ScrapeOnce(1.0)
	id, err := coord.Pick(1.5, wire.Hello{})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("live pick = %d, want 1 (the lightly loaded replica)", id)
	}

	doc, ok := s.FleetDoc().(FleetDoc)
	if !ok {
		t.Fatalf("FleetDoc type %T", s.FleetDoc())
	}
	if len(doc.Replicas) != 3 || doc.Up != 3 {
		t.Fatalf("doc = %+v", doc)
	}
	r2 := doc.Replicas[2]
	if r2.Sessions != 5 || r2.QueueDepth != 8 || r2.Resumed != 2 || !r2.Live {
		t.Errorf("replica 2 stats = %+v", r2)
	}
	if r2.MTPP99Ms <= 0 {
		t.Errorf("replica 2 mtp p99 = %v, want > 0", r2.MTPP99Ms)
	}
}

func TestScraperDownMarkingAndRecovery(t *testing.T) {
	coord := NewCoordinator(Config{})
	events := telemetry.NewFlightRecorder(64)
	failing := true
	s := NewScraper(coord, ScrapeConfig{
		DownAfter: 3,
		Events:    events,
		Fetch: func(int, string) (telemetry.RegistrySnapshot, error) {
			if failing {
				return telemetry.RegistrySnapshot{}, errors.New("connection refused")
			}
			return synthSnapshot(0, 0), nil
		},
	})
	s.AddTarget(0, "http://replica-0/metrics")
	coord.AddReplica(0, s.Probe(0))

	s.ScrapeOnce(1)
	s.ScrapeOnce(2)
	if coord.StatusOf(0) != Up {
		t.Fatal("two failures must not mark Down yet")
	}
	s.ScrapeOnce(3)
	if coord.StatusOf(0) != Down {
		t.Fatal("three consecutive failures must mark the replica Down")
	}

	// recovery: a successful scrape re-Ups a replica the scraper downed
	failing = false
	s.ScrapeOnce(4)
	if coord.StatusOf(0) != Up {
		t.Fatal("successful scrape must undo the scraper's own Down-mark")
	}

	kinds := map[string]int{}
	for _, ev := range events.Events() {
		kinds[ev.Kind]++
	}
	if kinds[telemetry.EventScrapeFail] != 3 {
		t.Errorf("scrape_fail events = %d, want 3 (events: %v)", kinds[telemetry.EventScrapeFail], kinds)
	}
}

func TestScraperDoesNotRevertExternalDown(t *testing.T) {
	coord := NewCoordinator(Config{})
	s := NewScraper(coord, ScrapeConfig{
		Fetch: func(int, string) (telemetry.RegistrySnapshot, error) {
			return synthSnapshot(0, 0), nil
		},
	})
	s.AddTarget(0, "t")
	coord.AddReplica(0, s.Probe(0))
	// the gateway marked it Down (dial failure) — the scraper scraping
	// its still-running metrics endpoint must not resurrect it
	coord.SetStatus(0, Down)
	s.ScrapeOnce(1)
	if coord.StatusOf(0) != Down {
		t.Fatal("scraper must only undo its own Down-marks")
	}
}

func TestCoordinatorRecordsFlightEvents(t *testing.T) {
	events := telemetry.NewFlightRecorder(64)
	coord := NewCoordinator(Config{ReplicaCapacity: 1, Events: events})
	coord.AddReplica(0, nil)
	w, err := coord.AdmitOn(1.0, 0, 1, wire.Hello{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.AdmitOn(1.1, 0, 2, wire.Hello{}); err == nil {
		t.Fatal("over-capacity admission must refuse")
	}
	coord.End(w.ResumeToken)
	coord.SetStatus(0, Down)

	kinds := map[string]int{}
	for _, ev := range events.Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []string{EventAdmit, EventRefuse, EventEnd, EventDown} {
		if kinds[want] == 0 {
			t.Errorf("no %q event recorded (got %v)", want, kinds)
		}
	}
	// explicit-clock events carry the admission time
	for _, ev := range events.Events() {
		if ev.Kind == EventAdmit && ev.T != 1.0 {
			t.Errorf("admit event at t=%v, want 1.0", ev.T)
		}
	}
}
