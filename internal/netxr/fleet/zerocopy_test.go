package fleet

import (
	"io"
	"net"
	"testing"
	"time"

	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
	"illixr/internal/testutil"
)

// protocolErrorGateway builds a gateway with metrics but no reachable
// replicas — the handshake never gets that far in these tests.
func protocolErrorGateway(reg *telemetry.Registry) *Gateway {
	coord := NewCoordinator(Config{ReplicaCapacity: 8})
	return &Gateway{
		Coord:            coord,
		Dial:             func(int) (net.Conn, error) { return nil, io.ErrClosedPipe },
		Metrics:          reg,
		HandshakeTimeout: 200 * time.Millisecond,
	}
}

// expectProtocolErrorBye reads the client side and asserts the terminal
// "protocol error" Bye with no retry hint.
func expectProtocolErrorBye(t *testing.T, r *wire.Reader) {
	t.Helper()
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatalf("want protocol-error bye, got read error %v", err)
	}
	if f.Type != wire.TypeBye {
		t.Fatalf("reply = %v, want bye", f.Type)
	}
	bye, err := wire.DecodeBye(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if bye.Reason != "protocol error" {
		t.Fatalf("bye reason = %q, want %q", bye.Reason, "protocol error")
	}
	if bye.RetryAfterMs != 0 {
		t.Fatalf("protocol-error bye carries retry hint %dms; redialing cannot help", bye.RetryAfterMs)
	}
}

// TestGatewayProtocolErrorBye: a client whose first frame is not a
// valid Hello gets an explicit "protocol error" Bye — not the silent
// close it used to — and the violation is counted.
func TestGatewayProtocolErrorBye(t *testing.T) {
	cases := []struct {
		name string
		send func(t *testing.T, conn net.Conn)
	}{
		{"first frame not hello", func(t *testing.T, conn net.Conn) {
			w := wire.NewWriter(conn)
			if err := w.WriteFrame(wire.Frame{Type: wire.TypeIMU, Payload: []byte{1, 2, 3}}); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage bytes", func(t *testing.T, conn net.Conn) {
			if _, err := conn.Write([]byte("not a netxr frame at all")); err != nil {
				t.Fatal(err)
			}
		}},
		{"handshake timeout", func(t *testing.T, conn net.Conn) {
			// send nothing: the gateway's Hello deadline expires
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			gw := protocolErrorGateway(reg)
			defer gw.Shutdown(t.Context())

			client, srv := net.Pipe()
			defer client.Close()
			gw.HandleConn(srv)
			r := wire.NewReader(client)
			tc.send(t, client)
			expectProtocolErrorBye(t, r)
			if v := reg.Counter(telemetry.MetricName("fleet", "gateway_protocol_errors_total")).Value(); v != 1 {
				t.Fatalf("protocol-error counter = %d, want 1", v)
			}
		})
	}
}

// TestGatewayZeroCopyByeRetiresToken: the raw relay must still parse
// enough — the type byte — to treat a client Bye as a terminal
// departure: relayed to the replica, token retired.
func TestGatewayZeroCopyByeRetiresToken(t *testing.T) {
	tf := newTestFleet(t, 1, 8)
	_, r, w, wel := tf.connect(t, wire.Hello{App: "bye"})

	imu := wire.AppendIMU(nil, wireIMU(0.01))
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeIMU, Payload: imu}); err != nil {
		t.Fatal(err)
	}
	if f, err := r.ReadFrame(); err != nil || f.Type != wire.TypePose {
		t.Fatalf("downlink = %v err %v, want pose", f.Type, err)
	}
	if _, ok := tf.coord.Lookup(wel.ResumeToken); !ok {
		t.Fatal("token not registered")
	}
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeBye,
		Payload: wire.AppendBye(nil, wire.Bye{Reason: "done"})}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := tf.coord.Lookup(wel.ResumeToken); !ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("client Bye did not retire the resume token")
}

// TestGatewayCoalescedRelayDeliversBurst: with a small flush window, a
// burst far larger than the window must arrive complete and in order
// through the raw relay.
func TestGatewayCoalescedRelayDeliversBurst(t *testing.T) {
	tf := newTestFleet(t, 1, 8)
	tf.gw.FlushFrames = 4
	_, r, w, _ := tf.connect(t, wire.Hello{App: "burst"})

	const burst = 50
	errc := make(chan error, 1)
	go func() {
		imu := wire.AppendIMU(nil, wireIMU(0.01))
		for i := 0; i < burst; i++ {
			if err := w.WriteFrame(wire.Frame{Type: wire.TypeIMU, Payload: imu}); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	// every IMU produces a pose answer (LatestWins may displace under
	// pressure, so just require steady progress and at least one)
	poses := 0
	_ = r // read with a deadline budget
	for poses < 1 {
		f, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("downlink died after %d poses: %v", poses, err)
		}
		if f.Type == wire.TypePose {
			poses++
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("uplink burst: %v", err)
	}
}

// loopReader serves the same encoded stream forever: the zero-alloc
// relay loop below reads steady-state traffic from it without ever
// hitting EOF or reallocating.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

// TestZeroAllocRelayLoop pins the steady-state relay data path —
// ReadRaw, the hop-span trace rewrite, QueueRaw, Flush — at zero
// allocations per frame. This is the loop every one of a thousand
// sessions' frames crosses twice; scripts/scalecheck holds the live
// measurement under 0.05 allocs/frame.
func TestZeroAllocRelayLoop(t *testing.T) {
	big := make([]byte, 1024)
	for i := range big {
		big[i] = byte(i)
	}
	frames := []wire.Frame{
		{Type: wire.TypeIMU, Trace: telemetry.SpanRef{Trace: 1, Span: 2}, Payload: []byte{1, 2, 3, 4, 5, 6}},
		{Type: wire.TypePose, Trace: telemetry.SpanRef{Trace: 1, Span: 3}, Payload: big[:64]},
		{Type: wire.TypeFrame, Trace: telemetry.SpanRef{Trace: 1, Span: 4}, Payload: big},
		{Type: wire.TypeQoE, Payload: big[:32]},
	}
	var stream []byte
	for _, f := range frames {
		stream = wire.AppendFrame(stream, f)
	}
	r := wire.NewReader(&loopReader{data: stream})
	w := wire.NewWriter(io.Discard)
	ref := telemetry.SpanRef{Trace: 9, Span: 9}
	var loopErr error
	testutil.MustZeroAllocs(t, "gateway relay loop", func() {
		for i := 0; i < len(frames); i++ {
			raw, err := r.ReadRaw()
			if err != nil {
				loopErr = err
				return
			}
			if raw.Trace.Valid() {
				raw.SetTrace(ref)
			}
			w.QueueRaw(raw)
		}
		if err := w.Flush(); err != nil {
			loopErr = err
		}
	})
	if loopErr != nil {
		t.Fatal(loopErr)
	}
}
