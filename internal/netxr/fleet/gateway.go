package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"illixr/internal/netxr/binlog"
	"illixr/internal/netxr/session"
	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
)

// ackEvery is how many uplink frames the gateway relays between Ack
// checkpoints into the coordinator's resume registry.
const ackEvery = 64

// Gateway trace-stitching constants: the gateway's span collector
// allocates ids from GatewayIDBase — disjoint from the client's low
// range and from every replica session's sessionID<<40 range (which
// stays below 1<<62 for the first ~4M sessions) — so gateway hop spans
// merge collision-free into a stitched cross-node trace
// (internal/telemetry/stitch, DESIGN.md §12).
const (
	// CompGatewayUp and CompGatewayDown name the gateway's relay hop
	// spans in stitched traces.
	CompGatewayUp   = "gw_uplink"
	CompGatewayDown = "gw_downlink"
	// GatewayIDBase is the gateway collector's span-id floor.
	GatewayIDBase = uint64(1) << 62
)

// Gateway fronts the fleet: clients dial it, it places each session on
// a replica via the coordinator and then relays frames both ways. The
// relay is frame-level, not byte-level, because the gateway must own
// the handshake — it intercepts the client Hello, dials the chosen
// replica with a fresh (resume-stripped) Hello, and rewrites the
// replica's Welcome with the fleet's resume token, epoch and ack
// snapshot. Replicas stay resume-ignorant; all survivability state
// lives in the coordinator, which is exactly why it outlives them.
//
// Failure mapping, client's view:
//   - no replica available / admission refused → Bye with Retry-After
//   - replica dies mid-session → connection drops, the client redials
//     the gateway with its resume token and lands on a survivor
//   - replica drains → its Bye (Retry-After attached) is relayed
type Gateway struct {
	// Coord places sessions and owns resume state. Required.
	Coord *Coordinator
	// Dial opens a connection to a replica. Required.
	Dial func(replica int) (net.Conn, error)
	// Now is the admission clock in seconds; nil = wall clock from the
	// first connection.
	Now func() float64
	// HandshakeTimeout bounds the client Hello wait and the replica
	// handshake (0 = 5s).
	HandshakeTimeout time.Duration
	// DialAttempts bounds placement retries when a picked replica fails
	// to dial — each failure marks that replica Down and re-Picks
	// (0 = 3).
	DialAttempts int
	// Metrics receives illixr_fleet_* gateway instruments; nil = off.
	Metrics *telemetry.Registry
	// Spans, when installed, records one hop span per relayed traced
	// frame (gw_uplink / gw_downlink), parenting the incoming frame's
	// span and rewriting the relayed frame's trace ref — so a stitched
	// trace shows the gateway hop between client and replica. The
	// collector's id base is raised to GatewayIDBase on first use.
	Spans *telemetry.SpanCollector
	// Record, when non-nil, captures the gateway's client-facing
	// traffic — every frame read from (DirUp) or written to (DirDown)
	// any relayed client, refusal Byes included — into one binlog
	// (DESIGN.md §13). Uplink frames are recorded as the client sent
	// them (before the hop-span trace rewrite); downlink frames as
	// delivered (after the Welcome rewrite). All relay goroutines share
	// the Writer's single append path; the process that opened it
	// closes it after Shutdown returns.
	Record *binlog.Writer

	startNow sync.Once
	nowFn    func() float64

	initOnce sync.Once
	relayed  *telemetry.Counter
	dialFail *telemetry.Counter

	mu     sync.Mutex
	closed bool
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

func (g *Gateway) init() {
	g.initOnce.Do(func() {
		g.relayed = g.Metrics.Counter(telemetry.MetricName("fleet", "gateway_frames_relayed_total"))
		g.dialFail = g.Metrics.Counter(telemetry.MetricName("fleet", "gateway_dial_failures_total"))
		g.Spans.SetIDBase(GatewayIDBase) // nil-safe
		if g.HandshakeTimeout == 0 {
			g.HandshakeTimeout = 5 * time.Second
		}
		if g.DialAttempts == 0 {
			g.DialAttempts = 3
		}
	})
}

func (g *Gateway) now() float64 {
	g.startNow.Do(func() {
		if g.Now != nil {
			g.nowFn = g.Now
			return
		}
		start := time.Now()
		g.nowFn = func() float64 { return time.Since(start).Seconds() }
	})
	return g.nowFn()
}

// Serve accepts client connections on ln until Shutdown. It blocks.
func (g *Gateway) Serve(ln net.Listener) error {
	g.init()
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return session.ErrClosed
	}
	g.ln = ln
	g.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			g.mu.Lock()
			closed := g.closed
			g.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		g.HandleConn(conn)
	}
}

// HandleConn adopts one client connection (tests feed pipe ends
// directly) and relays it asynchronously.
func (g *Gateway) HandleConn(conn net.Conn) {
	g.init()
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		_ = conn.Close()
		return
	}
	if g.conns == nil {
		g.conns = map[net.Conn]struct{}{}
	}
	g.conns[conn] = struct{}{}
	g.wg.Add(1)
	g.mu.Unlock()
	go func() {
		defer g.wg.Done()
		g.relay(conn)
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
	}()
}

// Shutdown stops accepting and closes every relayed connection, then
// waits for the relay goroutines up to the context deadline.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	ln := g.ln
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	done := make(chan struct{})
	go func() { g.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// refuse sends a terminal Bye to the client, best-effort.
func (g *Gateway) refuse(conn net.Conn, w *wire.Writer, reason string, retry time.Duration) {
	_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
	bye := wire.Frame{Type: wire.TypeBye,
		Payload: wire.AppendBye(nil, wire.Bye{Reason: reason, RetryAfterMs: uint32(retry.Milliseconds())})}
	if err := w.WriteFrame(bye); err == nil && g.Record != nil {
		_ = g.Record.Record(binlog.DirDown, bye)
	}
	_ = conn.Close()
}

// place picks a replica and dials it, marking dial failures Down and
// re-picking, up to DialAttempts.
func (g *Gateway) place(now float64, h wire.Hello) (int, net.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < g.DialAttempts; attempt++ {
		id, err := g.Coord.Pick(now, h)
		if err != nil {
			return -1, nil, err
		}
		conn, err := g.Dial(id)
		if err == nil {
			return id, conn, nil
		}
		// a replica that refuses a dial is treated as crashed: mark it
		// Down so placement stops routing there, and try the next one.
		g.dialFail.Inc()
		g.Coord.cfg.Events.RecordAt(now, telemetry.EventDialFail, replicaNode(id), err.Error())
		g.Coord.SetStatus(id, Down)
		lastErr = fmt.Errorf("fleet: dial replica %d: %w", id, err)
	}
	return -1, nil, lastErr
}

// relay runs one client's full lifecycle on the calling goroutine.
func (g *Gateway) relay(client net.Conn) {
	defer func() { _ = client.Close() }()
	cr, cw := wire.NewReader(client), wire.NewWriter(client)

	// 1. client Hello
	_ = client.SetReadDeadline(time.Now().Add(g.HandshakeTimeout))
	f, err := cr.ReadFrame()
	if err != nil || f.Type != wire.TypeHello {
		return
	}
	hello, err := wire.DecodeHello(f.Payload)
	if err != nil {
		return
	}
	if g.Record != nil {
		_ = g.Record.Record(binlog.DirUp, f)
	}
	_ = client.SetReadDeadline(time.Time{})
	helloTrace := f.Trace

	// 2. place + dial
	now := g.now()
	replicaID, backend, err := g.place(now, hello)
	if err != nil {
		retry := g.Coord.cfg.RetryAfter
		if errors.Is(err, ErrNoReplica) {
			g.refuse(client, cw, "fleet full", retry)
		} else {
			g.refuse(client, cw, "fleet unavailable", retry)
		}
		return
	}
	defer func() { _ = backend.Close() }()
	br, bw := wire.NewReader(backend), wire.NewWriter(backend)

	// 3. handshake the replica with a resume-stripped Hello: the replica
	// admits it as a brand-new session; resume is a fleet-level fiction.
	backendHello := hello
	backendHello.ResumeToken, backendHello.LastSeq = 0, 0
	if err := bw.WriteFrame(wire.Frame{Type: wire.TypeHello, Trace: helloTrace,
		Payload: wire.AppendHello(nil, backendHello)}); err != nil {
		g.refuse(client, cw, "fleet unavailable", g.Coord.cfg.RetryAfter)
		return
	}
	_ = backend.SetReadDeadline(time.Now().Add(g.HandshakeTimeout))
	bf, err := br.ReadFrame()
	if err != nil {
		g.refuse(client, cw, "fleet unavailable", g.Coord.cfg.RetryAfter)
		return
	}
	_ = backend.SetReadDeadline(time.Time{})
	if bf.Type == wire.TypeBye {
		// replica-level refusal (e.g. its own MaxSessions): relay the
		// push-back as-is — the hint tells the client when to come back.
		b, _ := wire.DecodeBye(bf.Payload)
		if b.RetryAfterMs == 0 {
			b.RetryAfterMs = uint32(g.Coord.cfg.RetryAfter.Milliseconds())
		}
		g.refuse(client, cw, b.Reason, time.Duration(b.RetryAfterMs)*time.Millisecond)
		return
	}
	if bf.Type != wire.TypeWelcome {
		g.refuse(client, cw, "fleet protocol error", 0)
		return
	}
	backendWelcome, err := wire.DecodeWelcome(bf.Payload)
	if err != nil {
		g.refuse(client, cw, "fleet protocol error", 0)
		return
	}

	// 4. commit the placement; this can still refuse (the replica filled
	// up between Pick and now, or a resume burst is in flight).
	welcome, err := g.Coord.AdmitOn(g.now(), replicaID, backendWelcome.Session, hello)
	if err != nil {
		var ae *session.AdmissionError
		if errors.As(err, &ae) {
			g.refuse(client, cw, ae.Reason, ae.RetryAfter)
		} else {
			g.refuse(client, cw, err.Error(), 0)
		}
		return
	}
	welcome.Proto = wire.Version
	wf := wire.Frame{Type: wire.TypeWelcome, Trace: bf.Trace,
		Payload: wire.AppendWelcome(nil, welcome)}
	if err := cw.WriteFrame(wf); err != nil {
		return
	}
	if g.Record != nil {
		_ = g.Record.Record(binlog.DirDown, wf)
	}
	token := welcome.ResumeToken
	baseSeq := welcome.LastAckSeq

	// 5. relay. Uplink (client→replica) counts frames for the ack
	// checkpoint; a client Bye retires the token — that departure is
	// intentional, not a failure to survive. Downlink (replica→client)
	// relays until the replica closes or says Bye.
	var once sync.Once
	var severed atomic.Bool
	closeBoth := func() { severed.Store(true); _ = client.Close(); _ = backend.Close() }
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // uplink
		defer wg.Done()
		defer once.Do(closeBoth)
		n := uint64(0)
		for {
			uf, err := cr.ReadFrame()
			if err != nil {
				g.Coord.Ack(token, baseSeq+n)
				return
			}
			if g.Record != nil {
				_ = g.Record.Record(binlog.DirUp, uf)
			}
			if uf.Type == wire.TypeBye {
				_ = bw.WriteFrame(uf)
				g.Coord.End(token)
				return
			}
			if g.Spans != nil && uf.Trace.Valid() {
				// hop span: parent the client's span, pass the gateway's
				// on — the stitched trace then shows the relay hop.
				t := g.now()
				uf.Trace = g.Spans.Emit(CompGatewayUp, uf.Trace.Trace, t, t, uf.Trace.Span)
			}
			if err := bw.WriteFrame(uf); err != nil {
				g.Coord.Ack(token, baseSeq+n)
				return
			}
			n++
			g.relayed.Inc()
			if n%ackEvery == 0 {
				g.Coord.Ack(token, baseSeq+n)
			}
		}
	}()
	// downlink, on this goroutine
	for {
		df, err := br.ReadFrame()
		if err != nil {
			// the clean path ends with a relayed Bye, so an error here
			// without one means the replica went away under a session the
			// client still wanted: mark it Down (unless this end of the
			// relay was torn down first by the client side) and sever the
			// client so it redials with its token.
			if !severed.Load() {
				g.Coord.SetStatus(replicaID, Down)
			}
			break
		}
		if g.Spans != nil && df.Trace.Valid() && df.Type != wire.TypeBye {
			t := g.now()
			df.Trace = g.Spans.Emit(CompGatewayDown, df.Trace.Trace, t, t, df.Trace.Span)
		}
		if err := cw.WriteFrame(df); err != nil {
			break
		}
		if g.Record != nil {
			_ = g.Record.Record(binlog.DirDown, df)
		}
		g.relayed.Inc()
		if df.Type == wire.TypeBye {
			break
		}
	}
	once.Do(closeBoth)
	wg.Wait()
}
