package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"illixr/internal/netxr/binlog"
	"illixr/internal/netxr/session"
	"illixr/internal/netxr/wire"
	"illixr/internal/recycle"
	"illixr/internal/telemetry"
)

// ackEvery is how many uplink frames the gateway relays between Ack
// checkpoints into the coordinator's resume registry. Acks count only
// FLUSHED frames: a frame sitting in an unflushed batch has not reached
// the replica, and acking it would let a resume skip it.
const ackEvery = 64

// defaultGatewayFlush is the relay's flush window (frames per buffered
// write); see Gateway.FlushFrames.
const defaultGatewayFlush = 16

// Gateway trace-stitching constants: the gateway's span collector
// allocates ids from GatewayIDBase — disjoint from the client's low
// range and from every replica session's sessionID<<40 range (which
// stays below 1<<62 for the first ~4M sessions) — so gateway hop spans
// merge collision-free into a stitched cross-node trace
// (internal/telemetry/stitch, DESIGN.md §12).
const (
	// CompGatewayUp and CompGatewayDown name the gateway's relay hop
	// spans in stitched traces.
	CompGatewayUp   = "gw_uplink"
	CompGatewayDown = "gw_downlink"
	// GatewayIDBase is the gateway collector's span-id floor.
	GatewayIDBase = uint64(1) << 62
)

// Gateway fronts the fleet: clients dial it, it places each session on
// a replica via the coordinator and then relays frames both ways. The
// relay is frame-level, not byte-level, because the gateway must own
// the handshake — it intercepts the client Hello, dials the chosen
// replica with a fresh (resume-stripped) Hello, and rewrites the
// replica's Welcome with the fleet's resume token, epoch and ack
// snapshot. Replicas stay resume-ignorant; all survivability state
// lives in the coordinator, which is exactly why it outlives them.
//
// Failure mapping, client's view:
//   - no replica available / admission refused → Bye with Retry-After
//   - replica dies mid-session → connection drops, the client redials
//     the gateway with its resume token and lands on a survivor
//   - replica drains → its Bye (Retry-After attached) is relayed
type Gateway struct {
	// Coord places sessions and owns resume state. Required.
	Coord *Coordinator
	// Dial opens a connection to a replica. Required.
	Dial func(replica int) (net.Conn, error)
	// Now is the admission clock in seconds; nil = wall clock from the
	// first connection.
	Now func() float64
	// HandshakeTimeout bounds the client Hello wait and the replica
	// handshake (0 = 5s).
	HandshakeTimeout time.Duration
	// DialAttempts bounds placement retries when a picked replica fails
	// to dial — each failure marks that replica Down and re-Picks
	// (0 = 3).
	DialAttempts int
	// FlushFrames bounds the relay's flush window: up to this many
	// queued frames per direction go to the wire in one buffered write.
	// The flush tick is buffer exhaustion (FrameBuffered), not a timer —
	// a lone frame flushes immediately, so coalescing adds no latency
	// and stays virtual-time safe. 1 disables coalescing; 0 = default
	// (16). See DESIGN.md §15.
	FlushFrames int
	// Metrics receives illixr_fleet_* gateway instruments; nil = off.
	Metrics *telemetry.Registry
	// Spans, when installed, records one hop span per relayed traced
	// frame (gw_uplink / gw_downlink), parenting the incoming frame's
	// span and rewriting the relayed frame's trace ref — so a stitched
	// trace shows the gateway hop between client and replica. The
	// collector's id base is raised to GatewayIDBase on first use.
	Spans *telemetry.SpanCollector
	// Record, when non-nil, captures the gateway's client-facing
	// traffic — every frame read from (DirUp) or written to (DirDown)
	// any relayed client, refusal Byes included — into one binlog
	// (DESIGN.md §13). Uplink frames are recorded as the client sent
	// them (before the hop-span trace rewrite); downlink frames as
	// delivered (after the Welcome rewrite). All relay goroutines share
	// the Writer's single append path; the process that opened it
	// closes it after Shutdown returns.
	Record *binlog.Writer

	startNow sync.Once
	nowFn    func() float64

	initOnce  sync.Once
	relayed   *telemetry.Counter
	dialFail  *telemetry.Counter
	protoErrs *telemetry.Counter

	mu     sync.Mutex
	closed bool
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

func (g *Gateway) init() {
	g.initOnce.Do(func() {
		g.relayed = g.Metrics.Counter(telemetry.MetricName("fleet", "gateway_frames_relayed_total"))
		g.dialFail = g.Metrics.Counter(telemetry.MetricName("fleet", "gateway_dial_failures_total"))
		g.protoErrs = g.Metrics.Counter(telemetry.MetricName("fleet", "gateway_protocol_errors_total"))
		g.Spans.SetIDBase(GatewayIDBase) // nil-safe
		if g.HandshakeTimeout == 0 {
			g.HandshakeTimeout = 5 * time.Second
		}
		if g.DialAttempts == 0 {
			g.DialAttempts = 3
		}
		if g.FlushFrames == 0 {
			g.FlushFrames = defaultGatewayFlush
		}
		if g.FlushFrames < 1 {
			g.FlushFrames = 1
		}
	})
}

func (g *Gateway) now() float64 {
	g.startNow.Do(func() {
		if g.Now != nil {
			g.nowFn = g.Now
			return
		}
		start := time.Now()
		g.nowFn = func() float64 { return time.Since(start).Seconds() }
	})
	return g.nowFn()
}

// Serve accepts client connections on ln until Shutdown. It blocks.
func (g *Gateway) Serve(ln net.Listener) error {
	g.init()
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return session.ErrClosed
	}
	g.ln = ln
	g.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			g.mu.Lock()
			closed := g.closed
			g.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		g.HandleConn(conn)
	}
}

// HandleConn adopts one client connection (tests feed pipe ends
// directly) and relays it asynchronously.
func (g *Gateway) HandleConn(conn net.Conn) {
	g.init()
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		_ = conn.Close()
		return
	}
	if g.conns == nil {
		g.conns = map[net.Conn]struct{}{}
	}
	g.conns[conn] = struct{}{}
	g.wg.Add(1)
	g.mu.Unlock()
	go func() {
		defer g.wg.Done()
		g.relay(conn)
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
	}()
}

// Shutdown stops accepting and closes every relayed connection, then
// waits for the relay goroutines up to the context deadline.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	ln := g.ln
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	done := make(chan struct{})
	go func() { g.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// refuse sends a terminal Bye to the client, best-effort. The payload
// builds onto a recycled buffer: refusal storms (a full fleet refusing
// thousands of redials) must not allocate per connection.
func (g *Gateway) refuse(conn net.Conn, w *wire.Writer, reason string, retry time.Duration) {
	_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
	buf := recycle.Bytes.Get(64)[:0]
	bye := wire.Frame{Type: wire.TypeBye,
		Payload: wire.AppendBye(buf, wire.Bye{Reason: reason, RetryAfterMs: uint32(retry.Milliseconds())})}
	if err := w.WriteFrame(bye); err == nil && g.Record != nil {
		_ = g.Record.Record(binlog.DirDown, bye)
	}
	recycle.Bytes.Put(bye.Payload)
	_ = conn.Close()
}

// protocolError refuses a client whose very first frame was not a valid
// Hello (malformed, wrong type, or handshake timeout): instead of the
// silent close a misbehaving client used to get, it receives a terminal
// Bye naming the violation — no Retry-After hint, because redialing
// with the same bytes cannot help — and the flight recorder and the
// gateway_protocol_errors_total counter keep the evidence.
func (g *Gateway) protocolError(conn net.Conn, w *wire.Writer, detail string) {
	g.protoErrs.Inc()
	g.Coord.cfg.Events.RecordAt(g.now(), EventRefuse, "gateway", "protocol error: "+detail)
	g.refuse(conn, w, "protocol error", 0)
}

// place picks a replica and dials it, marking dial failures Down and
// re-picking, up to DialAttempts.
func (g *Gateway) place(now float64, h wire.Hello) (int, net.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < g.DialAttempts; attempt++ {
		id, err := g.Coord.Pick(now, h)
		if err != nil {
			return -1, nil, err
		}
		conn, err := g.Dial(id)
		if err == nil {
			return id, conn, nil
		}
		// a replica that refuses a dial is treated as crashed: mark it
		// Down so placement stops routing there, and try the next one.
		g.dialFail.Inc()
		g.Coord.cfg.Events.RecordAt(now, telemetry.EventDialFail, replicaNode(id), err.Error())
		g.Coord.SetStatus(id, Down)
		lastErr = fmt.Errorf("fleet: dial replica %d: %w", id, err)
	}
	return -1, nil, lastErr
}

// relay runs one client's full lifecycle on the calling goroutine.
func (g *Gateway) relay(client net.Conn) {
	defer func() { _ = client.Close() }()
	cr, cw := wire.NewReader(client), wire.NewWriter(client)

	// 1. client Hello
	_ = client.SetReadDeadline(time.Now().Add(g.HandshakeTimeout))
	f, err := cr.ReadFrame()
	if err != nil {
		g.protocolError(client, cw, "hello read: "+err.Error())
		return
	}
	if f.Type != wire.TypeHello {
		g.protocolError(client, cw, "first frame is "+f.Type.String())
		return
	}
	hello, err := wire.DecodeHello(f.Payload)
	if err != nil {
		g.protocolError(client, cw, "hello decode: "+err.Error())
		return
	}
	if g.Record != nil {
		_ = g.Record.Record(binlog.DirUp, f)
	}
	_ = client.SetReadDeadline(time.Time{})
	helloTrace := f.Trace

	// 2. place + dial
	now := g.now()
	replicaID, backend, err := g.place(now, hello)
	if err != nil {
		retry := g.Coord.cfg.RetryAfter
		if errors.Is(err, ErrNoReplica) {
			g.refuse(client, cw, "fleet full", retry)
		} else {
			g.refuse(client, cw, "fleet unavailable", retry)
		}
		return
	}
	defer func() { _ = backend.Close() }()
	br, bw := wire.NewReader(backend), wire.NewWriter(backend)

	// 3. handshake the replica with a resume-stripped Hello: the replica
	// admits it as a brand-new session; resume is a fleet-level fiction.
	backendHello := hello
	backendHello.ResumeToken, backendHello.LastSeq = 0, 0
	hbuf := wire.AppendHello(recycle.Bytes.Get(128)[:0], backendHello)
	err = bw.WriteFrame(wire.Frame{Type: wire.TypeHello, Trace: helloTrace, Payload: hbuf})
	recycle.Bytes.Put(hbuf)
	if err != nil {
		g.refuse(client, cw, "fleet unavailable", g.Coord.cfg.RetryAfter)
		return
	}
	_ = backend.SetReadDeadline(time.Now().Add(g.HandshakeTimeout))
	bf, err := br.ReadFrame()
	if err != nil {
		g.refuse(client, cw, "fleet unavailable", g.Coord.cfg.RetryAfter)
		return
	}
	_ = backend.SetReadDeadline(time.Time{})
	if bf.Type == wire.TypeBye {
		// replica-level refusal (e.g. its own MaxSessions): relay the
		// push-back as-is — the hint tells the client when to come back.
		b, _ := wire.DecodeBye(bf.Payload)
		if b.RetryAfterMs == 0 {
			b.RetryAfterMs = uint32(g.Coord.cfg.RetryAfter.Milliseconds())
		}
		g.refuse(client, cw, b.Reason, time.Duration(b.RetryAfterMs)*time.Millisecond)
		return
	}
	if bf.Type != wire.TypeWelcome {
		g.refuse(client, cw, "fleet protocol error", 0)
		return
	}
	backendWelcome, err := wire.DecodeWelcome(bf.Payload)
	if err != nil {
		g.refuse(client, cw, "fleet protocol error", 0)
		return
	}

	// 4. commit the placement; this can still refuse (the replica filled
	// up between Pick and now, or a resume burst is in flight).
	welcome, err := g.Coord.AdmitOn(g.now(), replicaID, backendWelcome.Session, hello)
	if err != nil {
		var ae *session.AdmissionError
		if errors.As(err, &ae) {
			g.refuse(client, cw, ae.Reason, ae.RetryAfter)
		} else {
			g.refuse(client, cw, err.Error(), 0)
		}
		return
	}
	welcome.Proto = wire.Version
	wf := wire.Frame{Type: wire.TypeWelcome, Trace: bf.Trace,
		Payload: wire.AppendWelcome(recycle.Bytes.Get(128)[:0], welcome)}
	err = cw.WriteFrame(wf)
	if err == nil && g.Record != nil {
		_ = g.Record.Record(binlog.DirDown, wf)
	}
	recycle.Bytes.Put(wf.Payload)
	if err != nil {
		return
	}
	token := welcome.ResumeToken
	baseSeq := welcome.LastAckSeq

	// 5. relay, zero-copy (DESIGN.md §15): after the handshake the
	// gateway never decodes a payload again. ReadRaw peeks type and
	// trace from the fixed header and hands over the whole encoded
	// frame; the only rewrite is the hop-span trace (SetTrace patches
	// the header and CRC in place); QueueRaw passes the bytes through
	// the writer's buffer, and up to FlushFrames frames ride one
	// buffered write. The binlog tap (RecordRaw) records exactly the
	// bytes being forwarded. Handshake frames (Hello/Welcome/Bye above)
	// stay on the decoded slow path — they are the frames the gateway
	// must understand and rewrite.
	var once sync.Once
	var severed atomic.Bool
	closeBoth := func() { severed.Store(true); _ = client.Close(); _ = backend.Close() }
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // uplink: client → replica
		defer wg.Done()
		defer once.Do(closeBoth)
		var queued, flushed, lastAcked uint64
		// flush returns false on a backend write error. Acks checkpoint
		// only flushed frames: a resume retransmits from the last ack,
		// so a frame that died in an unflushed batch must stay unacked.
		flush := func() bool {
			if err := bw.Flush(); err != nil {
				return false
			}
			g.relayed.Add(int(queued - flushed))
			flushed = queued
			if flushed-lastAcked >= ackEvery {
				g.Coord.Ack(token, baseSeq+flushed)
				lastAcked = flushed
			}
			return true
		}
		for {
			raw, err := cr.ReadRaw()
			if err != nil {
				if bw.Queued() > 0 && bw.Flush() == nil {
					g.relayed.Add(int(queued - flushed))
					flushed = queued
				}
				g.Coord.Ack(token, baseSeq+flushed)
				return
			}
			if g.Record != nil {
				// tap before the span rewrite: capture what the client sent
				_ = g.Record.RecordRaw(binlog.DirUp, raw)
			}
			if raw.Type == wire.TypeBye {
				bw.QueueRaw(raw)
				if bw.Flush() == nil {
					g.relayed.Add(int(queued - flushed))
				}
				// clean departure: the replica will tear the session down as
				// soon as it reads the Bye, possibly before this goroutine's
				// deferred close runs — mark the relay severed first so the
				// downlink's read error is not mistaken for a replica death.
				severed.Store(true)
				g.Coord.End(token)
				return
			}
			if g.Spans != nil && raw.Trace.Valid() {
				// hop span: parent the client's span, pass the gateway's
				// on — the stitched trace then shows the relay hop.
				t := g.now()
				raw.SetTrace(g.Spans.Emit(CompGatewayUp, raw.Trace.Trace, t, t, raw.Trace.Span))
			}
			bw.QueueRaw(raw)
			queued++
			// flush on window exhaustion or an empty read buffer: never
			// hold a frame while the client has nothing more in flight
			if bw.Queued() >= g.FlushFrames || !cr.FrameBuffered() {
				if !flush() {
					g.Coord.Ack(token, baseSeq+flushed)
					return
				}
			}
		}
	}()
	// downlink, on this goroutine: replica → client
	var dnQueued, dnFlushed uint64
	for {
		raw, err := br.ReadRaw()
		if err != nil {
			// the clean path ends with a relayed Bye, so an error here
			// without one means the replica went away under a session the
			// client still wanted: mark it Down (unless this end of the
			// relay was torn down first by the client side) and sever the
			// client so it redials with its token.
			if cw.Queued() > 0 && cw.Flush() == nil {
				g.relayed.Add(int(dnQueued - dnFlushed))
			}
			if !severed.Load() {
				g.Coord.SetStatus(replicaID, Down)
			}
			break
		}
		isBye := raw.Type == wire.TypeBye
		if g.Spans != nil && raw.Trace.Valid() && !isBye {
			t := g.now()
			raw.SetTrace(g.Spans.Emit(CompGatewayDown, raw.Trace.Trace, t, t, raw.Trace.Span))
		}
		cw.QueueRaw(raw)
		dnQueued++
		if g.Record != nil {
			// tap at queue time, after the rewrite: the capture holds the
			// bytes as delivered (QueueRaw copied them, so the alias into
			// the reader's scratch is safe)
			_ = g.Record.RecordRaw(binlog.DirDown, raw)
		}
		if isBye || cw.Queued() >= g.FlushFrames || !br.FrameBuffered() {
			if err := cw.Flush(); err != nil {
				break
			}
			g.relayed.Add(int(dnQueued - dnFlushed))
			dnFlushed = dnQueued
		}
		if isBye {
			break
		}
	}
	once.Do(closeBoth)
	wg.Wait()
}
