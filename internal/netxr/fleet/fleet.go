// Package fleet coordinates a replicated set of netxr session servers
// behind one admission-control point (DESIGN.md §11). The Coordinator
// owns the fleet-wide view: which replicas are up, how loaded each one
// is, and — critically — the resume registry that lets a session survive
// the replica it was placed on. Placement is two-phase: Pick chooses a
// replica read-only at dial time, AdmitOn commits (and revalidates) the
// placement during the session handshake, so the inherent race between
// choosing and landing is handled honestly instead of assumed away.
//
// Admission control is push-back, not failure: a full fleet or a resume
// burst refuses with a *session.AdmissionError carrying a Retry-After
// hint, which the transport turns into a retryable Bye — the client
// backs off and redials rather than erroring out.
//
// Time enters as an explicit float64 (seconds); the caller chooses wall
// or virtual time, so the deterministic chaos bench (internal/bench
// -exp fleet) drives the same coordinator code under the netsim clock.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"illixr/internal/config"
	"illixr/internal/netxr/session"
	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
)

// Status is a replica's lifecycle state.
type Status int

// Replica states: Up takes placements and resumes; Draining finishes
// what it has but takes nothing new (graceful restart); Down is crashed
// or unreachable — its sessions are displaced and resume elsewhere.
const (
	Up Status = iota
	Draining
	Down
)

func (s Status) String() string {
	switch s {
	case Up:
		return "up"
	case Draining:
		return "draining"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// LoadProbe reports a replica's live load for placement scoring: its
// session count and aggregate reliable-queue depth (the backpressure
// signal). nil probes fall back to the coordinator's own placement
// counts, which track sessions but not queue depth.
type LoadProbe func() (sessions int, queueDepth float64)

// Record is one session's fleet-side state: everything needed to resume
// it on a different replica than the one it was placed on.
type Record struct {
	// Token is the resume token the client presents on reconnect.
	Token uint64
	// Hello is the original handshake (rates, seed, app).
	Hello wire.Hello
	// Replica currently hosting the session.
	Replica int
	// Epoch counts placements: 1 on first admission, +1 per resume. The
	// client uses it to discard stale poses from a previous placement.
	Epoch uint64
	// LastAckSeq is the highest uplink frame seq the fleet acknowledged;
	// on resume the client learns how much of its uplink survived.
	LastAckSeq uint64
}

// Config tunes the coordinator. The zero value is usable.
type Config struct {
	// ReplicaCapacity caps sessions per replica (0 = config default).
	ReplicaCapacity int
	// QueueWeight scales a replica's queue depth against its session
	// count in the placement score (0 = default 4: a deep queue repels
	// new placements harder than a warm body).
	QueueWeight float64
	// RetryAfter is the base reconnect hint on refusals (0 = 250ms).
	RetryAfter time.Duration
	// ResumeBurst bounds resumes admitted per ResumeWindow — a dead
	// replica's whole population redialing at once is spread out instead
	// of thundering onto the survivors (0 = 16).
	ResumeBurst int
	// ResumeWindowSec is the sliding burst window in seconds (0 = 0.25).
	ResumeWindowSec float64
	// TokenSeed namespaces resume tokens (deterministic issuance).
	TokenSeed int64
	// Shards splits the resume registry (and its decision log) into this
	// many independently locked shards keyed by token, so ack/end/lookup
	// traffic from a thousand relays stops serializing on the placement
	// lock (DESIGN.md §15). Rounded up to a power of two; 0 = default (16).
	// The decision fingerprint is shard-count invariant: any two shard
	// configurations replaying the same admission sequence fingerprint
	// identically.
	Shards int
	// Metrics receives illixr_fleet_* instruments; nil = uninstrumented.
	Metrics *telemetry.Registry
	// Events receives the fleet flight-recorder stream (admissions,
	// refusals, resumes, status transitions); nil = no recording.
	Events *telemetry.FlightRecorder
}

func (c Config) withDefaults() Config {
	if c.ReplicaCapacity == 0 {
		c.ReplicaCapacity = config.DefaultNet().MaxSessions
	}
	if c.QueueWeight == 0 {
		c.QueueWeight = 4
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
	if c.ResumeBurst == 0 {
		c.ResumeBurst = 16
	}
	if c.ResumeWindowSec == 0 {
		c.ResumeWindowSec = 0.25
	}
	if c.Shards == 0 {
		c.Shards = defaultShards
	}
	c.Shards = ceilPow2(c.Shards)
	return c
}

const (
	// defaultShards is the resume-registry shard count.
	defaultShards = 16
	// maxShards bounds a hostile config.
	maxShards = 1 << 10
	// maxDecisions caps the decision log fleet-wide: past it, decisions
	// still consume sequence numbers (so admissions stay identical) but
	// are no longer retained. The cap is global, not per shard, so the
	// retained prefix — and with it the fingerprint — is shard-count
	// invariant.
	maxDecisions = 1 << 20
)

// ceilPow2 rounds n up to the next power of two in [1, maxShards].
func ceilPow2(n int) int {
	if n < 1 {
		return 1
	}
	if n > maxShards {
		return maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ErrUnknownToken refuses a resume Hello whose token was never issued
// (or was ended): terminal, not retryable — retrying cannot help.
var ErrUnknownToken = errors.New("fleet: unknown resume token")

// ErrNoReplica means Pick found no Up replica with headroom.
var ErrNoReplica = errors.New("fleet: no replica available")

type replica struct {
	status Status
	probe  LoadProbe
	count  int // sessions placed here by this coordinator
}

type fleetMetrics struct {
	placed     *telemetry.Counter
	resumed    *telemetry.Counter
	refused    *telemetry.Counter
	up         *telemetry.Gauge
	contention *telemetry.Counter
}

// decision is one committed admission-control outcome. The log exists
// so sharding the registry is provably harmless: every decision gets a
// globally ordered sequence number, and DecisionFingerprint folds the
// decisions in that order — any two shard configurations replaying the
// same admission script fingerprint identically.
type decision struct {
	seq     uint64
	kind    uint8 // decAdmit..decEnd
	reason  uint8 // refusal reason code (0 otherwise)
	replica int32
	token   uint64
	epoch   uint64
}

// Decision kinds and refusal reason codes.
const (
	decAdmit uint8 = iota + 1
	decResume
	decRefuse
	decEnd
)

const (
	reasonReplicaGone uint8 = iota + 1
	reasonReplicaFull
	reasonUnknownToken
	reasonResumeBurst
)

// recordShard is one lock's worth of the resume registry plus its slice
// of the decision log.
type recordShard struct {
	mu        sync.Mutex
	records   map[uint64]*Record
	decisions []decision
}

// Coordinator is the fleet brain. All methods are safe for concurrent
// use; time is always an explicit argument so the same instance runs
// under wall or virtual clocks.
//
// Locking (DESIGN.md §15): the global mu covers the replica table and
// the resume-burst window; each recordShard's mu covers its records and
// decision-log slice. Lock order is shard → global (a shard holder may
// take the global lock; a global holder never touches a shard), so the
// hot per-session operations — Ack, Lookup, End — run entirely on the
// token's shard while placement scoring runs on the global lock.
type Coordinator struct {
	cfg Config
	m   fleetMetrics

	mu       sync.Mutex
	replicas map[int]*replica
	window   []float64 // admit times of recent resumes (sliding window)

	shards    []recordShard
	shardMask uint64
	tokState  atomic.Uint64 // splitmix64 state for token issuance
	decSeq    atomic.Uint64 // decision-log sequence (first seq is 1)

	contention atomic.Uint64 // contended lock acquisitions (global + shard)
}

// NewCoordinator builds a coordinator with no replicas.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		replicas: map[int]*replica{},
	}
	c.tokState.Store(uint64(cfg.TokenSeed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)
	c.shards = make([]recordShard, cfg.Shards)
	for i := range c.shards {
		c.shards[i].records = map[uint64]*Record{}
	}
	c.shardMask = uint64(cfg.Shards - 1)
	c.m = fleetMetrics{
		placed:     cfg.Metrics.Counter(telemetry.MetricName("fleet", "placed_total")),
		resumed:    cfg.Metrics.Counter(telemetry.MetricName("fleet", "resumed_total")),
		refused:    cfg.Metrics.Counter(telemetry.MetricName("fleet", "refused_total")),
		up:         cfg.Metrics.Gauge(telemetry.MetricName("fleet", "replicas_up")),
		contention: cfg.Metrics.Counter(telemetry.MetricName("fleet", "lock_contention_total")),
	}
	return c
}

// splitmix64 — the repo-wide deterministic generator.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix64 is splitmix64's finalizer alone (for hash folding).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// nextToken draws the next resume token. The atomic add-then-mix is the
// same arithmetic as splitmix64 over a shared state word, so sequential
// drivers observe the exact token sequence the single-lock coordinator
// issued — placement decisions stay byte-identical.
func (c *Coordinator) nextToken() uint64 {
	return mix64(c.tokState.Add(0x9e3779b97f4a7c15))
}

// shard returns the shard owning a token.
func (c *Coordinator) shard(token uint64) *recordShard { return &c.shards[token&c.shardMask] }

// lockGlobal / lockShard take their locks counting contended
// acquisitions — the observable behind BENCH_scale's contention cell.
func (c *Coordinator) lockGlobal() {
	if c.mu.TryLock() {
		return
	}
	c.contention.Add(1)
	c.m.contention.Inc()
	c.mu.Lock()
}

func (c *Coordinator) lockShard(sh *recordShard) {
	if sh.mu.TryLock() {
		return
	}
	c.contention.Add(1)
	c.m.contention.Inc()
	sh.mu.Lock()
}

// Contention returns the cumulative count of contended lock
// acquisitions across the global and shard locks.
func (c *Coordinator) Contention() uint64 { return c.contention.Load() }

// logDecision appends one decision to a shard's log. Caller holds the
// shard's lock. Sequence numbers are always consumed; retention stops
// at maxDecisions so the fingerprint prefix stays shard-count invariant.
func (c *Coordinator) logDecision(sh *recordShard, kind, reason uint8, replica int32, token, epoch uint64) {
	seq := c.decSeq.Add(1)
	if seq > maxDecisions {
		return
	}
	sh.decisions = append(sh.decisions, decision{
		seq: seq, kind: kind, reason: reason, replica: replica, token: token, epoch: epoch})
}

// DecisionFingerprint folds the fleet's committed admission decisions
// into one hash: shard logs are gathered in canonical shard order, put
// back into global sequence order, and folded field by field. Equal
// fingerprints mean equal decision streams — the proof obligation that
// sharding the registry changed nothing (scripts/scalecheck enforces
// it across shard counts on every make check).
func (c *Coordinator) DecisionFingerprint() uint64 {
	var all []decision
	for i := range c.shards {
		sh := &c.shards[i]
		c.lockShard(sh)
		all = append(all, sh.decisions...)
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	h := uint64(0x9e3779b97f4a7c15)
	for _, d := range all {
		for _, v := range [...]uint64{d.seq, uint64(d.kind), uint64(d.reason),
			uint64(uint32(d.replica)), d.token, d.epoch} {
			h = mix64(h ^ v)
		}
	}
	return h
}

// Decisions returns how many admission decisions have been committed.
func (c *Coordinator) Decisions() uint64 { return c.decSeq.Load() }

// AddReplica registers replica id as Up. probe may be nil (placement
// then scores by the coordinator's own counts alone).
func (c *Coordinator) AddReplica(id int, probe LoadProbe) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replicas[id] = &replica{status: Up, probe: probe}
	c.gaugeUpLocked()
}

// SetStatus transitions a replica's lifecycle state.
func (c *Coordinator) SetStatus(id int, st Status) {
	c.mu.Lock()
	changed := false
	if r, ok := c.replicas[id]; ok && r.status != st {
		r.status = st
		changed = true
	}
	c.gaugeUpLocked()
	c.mu.Unlock()
	if changed {
		kind := EventReplicaUp
		switch st {
		case Draining:
			kind = EventDraining
		case Down:
			kind = EventDown
		}
		c.cfg.Events.Record(kind, replicaNode(id), "")
	}
}

// replicaNode names a replica in flight events.
func replicaNode(id int) string { return fmt.Sprintf("replica-%d", id) }

// Flight-event kind aliases so fleet callers don't import telemetry for
// the constants alone.
const (
	EventAdmit     = telemetry.EventAdmit
	EventResume    = telemetry.EventResume
	EventRefuse    = telemetry.EventRefuse
	EventEnd       = telemetry.EventEnd
	EventReplicaUp = telemetry.EventReplicaUp
	EventDraining  = telemetry.EventDraining
	EventDown      = telemetry.EventDown
	EventDialFail  = telemetry.EventDialFail
)

// StatusOf returns a replica's state (Down for unknown ids).
func (c *Coordinator) StatusOf(id int) Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.replicas[id]; ok {
		return r.status
	}
	return Down
}

func (c *Coordinator) gaugeUpLocked() {
	n := 0
	for _, r := range c.replicas {
		if r.status == Up {
			n++
		}
	}
	c.m.up.Set(float64(n))
}

// load returns a replica's placement score inputs. Caller holds c.mu.
// With a probe installed the session count is the max of the scraped
// value and this coordinator's own placement count: the scrape sees load
// admitted elsewhere (other gateways, direct edge sessions) but lags by
// up to one scrape interval, during which our own count is the fresher
// signal — taking the max keeps placement stable under both.
func (r *replica) load() (int, float64) {
	if r.probe != nil {
		sessions, queue := r.probe()
		if r.count > sessions {
			sessions = r.count
		}
		return sessions, queue
	}
	return r.count, 0
}

// Pick chooses the replica a new connection should dial: the Up replica
// with headroom minimizing sessions + QueueWeight·queueDepth (ties go
// to the lowest id — deterministic). A resume Hello prefers any replica
// other than the one the session died on. Read-only: nothing is
// committed until AdmitOn lands the handshake there.
func (c *Coordinator) Pick(now float64, h wire.Hello) (int, error) {
	_ = now
	lastReplica := -1
	if h.ResumeToken != 0 {
		sh := c.shard(h.ResumeToken)
		c.lockShard(sh)
		if rec, ok := sh.records[h.ResumeToken]; ok {
			lastReplica = rec.Replica
		}
		sh.mu.Unlock()
	}
	c.lockGlobal()
	defer c.mu.Unlock()
	avoid := -1
	if lastReplica >= 0 {
		if r, live := c.replicas[lastReplica]; live && r.status != Up {
			avoid = lastReplica
		}
	}
	best, bestScore := -1, 0.0
	ids := make([]int, 0, len(c.replicas))
	for id := range c.replicas {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r := c.replicas[id]
		if r.status != Up || id == avoid {
			continue
		}
		sessions, queue := r.load()
		if sessions >= c.cfg.ReplicaCapacity {
			continue
		}
		score := float64(sessions) + c.cfg.QueueWeight*queue
		if best == -1 || score < bestScore {
			best, bestScore = id, score
		}
	}
	if best == -1 {
		return -1, ErrNoReplica
	}
	return best, nil
}

// AdmitOn commits a handshake onto a replica: it validates the replica
// is still Up with headroom, enforces the resume-burst limiter, issues
// or validates the resume token, and returns the Welcome the client
// should see. Refusals that retrying can fix return a
// *session.AdmissionError with a Retry-After hint.
func (c *Coordinator) AdmitOn(now float64, replicaID int, sessionID uint64, h wire.Hello) (wire.Welcome, error) {
	if h.ResumeToken == 0 {
		return c.admitFresh(now, replicaID, sessionID, h)
	}
	return c.admitResume(now, replicaID, sessionID, h)
}

// admitFresh validates the replica and commits a first placement. The
// global lock covers validation and the count bump (capacity stays
// exact); the token insert then lands on the shard alone.
func (c *Coordinator) admitFresh(now float64, replicaID int, sessionID uint64, h wire.Hello) (wire.Welcome, error) {
	c.lockGlobal()
	if err, reason := c.validateReplicaLocked(now, replicaID); err != nil {
		c.mu.Unlock()
		// log after the global unlock: taking a shard lock under the
		// global one would invert the shard → global order
		sh := &c.shards[0]
		c.lockShard(sh)
		c.logDecision(sh, decRefuse, reason, int32(replicaID), 0, 0)
		sh.mu.Unlock()
		return wire.Welcome{}, err
	}
	c.replicas[replicaID].count++
	c.mu.Unlock()

	// issue a token and insert it; the atomic draw keeps sequential
	// issuance identical to the single-lock coordinator, and collisions
	// (astronomically rare) just draw again
	var tok uint64
	var sh *recordShard
	for {
		tok = c.nextToken()
		if tok == 0 {
			continue
		}
		sh = c.shard(tok)
		c.lockShard(sh)
		if sh.records[tok] == nil {
			break
		}
		sh.mu.Unlock()
	}
	sh.records[tok] = &Record{Token: tok, Hello: h, Replica: replicaID, Epoch: 1}
	c.logDecision(sh, decAdmit, 0, int32(replicaID), tok, 1)
	sh.mu.Unlock()

	c.m.placed.Inc()
	c.cfg.Events.RecordAt(now, EventAdmit, replicaNode(replicaID), fmt.Sprintf("session %d", sessionID))
	return wire.Welcome{Session: sessionID, ResumeToken: tok, PoseEpoch: 1}, nil
}

// admitResume revalidates the replica, applies the burst limiter, and
// moves the placement. The shard lock is held across the whole commit
// (the record mutates); the global lock nests inside it — shard →
// global is the fleet-wide lock order.
func (c *Coordinator) admitResume(now float64, replicaID int, sessionID uint64, h wire.Hello) (wire.Welcome, error) {
	sh := c.shard(h.ResumeToken)
	c.lockShard(sh)
	rec, ok := sh.records[h.ResumeToken]
	if !ok {
		c.logDecision(sh, decRefuse, reasonUnknownToken, int32(replicaID), h.ResumeToken, 0)
		sh.mu.Unlock()
		c.m.refused.Inc()
		c.cfg.Events.RecordAt(now, EventRefuse, replicaNode(replicaID), "unknown resume token")
		return wire.Welcome{}, fmt.Errorf("%w: %#x", ErrUnknownToken, h.ResumeToken)
	}

	c.lockGlobal()
	if err, reason := c.validateReplicaLocked(now, replicaID); err != nil {
		c.mu.Unlock()
		c.logDecision(sh, decRefuse, reason, int32(replicaID), h.ResumeToken, rec.Epoch)
		sh.mu.Unlock()
		return wire.Welcome{}, err
	}
	// resume-burst limiter: slide the window, refuse past the budget so
	// a dead replica's population trickles back instead of stampeding.
	keep := c.window[:0]
	for _, t := range c.window {
		if now-t < c.cfg.ResumeWindowSec {
			keep = append(keep, t)
		}
	}
	c.window = keep
	if len(c.window) >= c.cfg.ResumeBurst {
		c.logDecision(sh, decRefuse, reasonResumeBurst, int32(replicaID), h.ResumeToken, rec.Epoch)
		c.mu.Unlock()
		sh.mu.Unlock()
		c.m.refused.Inc()
		c.cfg.Events.RecordAt(now, EventRefuse, replicaNode(replicaID), "resume burst")
		return wire.Welcome{}, &session.AdmissionError{Reason: "resume burst", RetryAfter: c.cfg.RetryAfter}
	}
	c.window = append(c.window, now)

	// move the placement: the old replica (dead or draining) loses it
	if old, live := c.replicas[rec.Replica]; live && rec.Replica != replicaID && old.count > 0 {
		old.count--
	}
	if rec.Replica != replicaID {
		c.replicas[replicaID].count++
	}
	c.mu.Unlock()

	rec.Replica = replicaID
	rec.Epoch++
	c.logDecision(sh, decResume, 0, int32(replicaID), rec.Token, rec.Epoch)
	welcome := wire.Welcome{
		Session:     sessionID,
		ResumeToken: rec.Token,
		Resumed:     true,
		LastAckSeq:  rec.LastAckSeq,
		PoseEpoch:   rec.Epoch,
	}
	epoch := rec.Epoch
	sh.mu.Unlock()

	c.m.resumed.Inc()
	c.cfg.Events.RecordAt(now, EventResume, replicaNode(replicaID), fmt.Sprintf("epoch %d", epoch))
	return welcome, nil
}

// validateReplicaLocked checks the target replica is Up with headroom.
// Caller holds the global lock. A non-nil error is the refusal to
// return; the caller logs the decision (with the returned reason code)
// once its own locks allow — never under the global lock, which would
// invert the shard → global order.
func (c *Coordinator) validateReplicaLocked(now float64, replicaID int) (error, uint8) {
	r, ok := c.replicas[replicaID]
	if !ok || r.status != Up {
		name := c.statusNameLocked(replicaID)
		c.m.refused.Inc()
		c.cfg.Events.RecordAt(now, EventRefuse, replicaNode(replicaID), "replica "+name)
		return &session.AdmissionError{
			Reason: fmt.Sprintf("replica %d %s", replicaID, name), RetryAfter: c.cfg.RetryAfter}, reasonReplicaGone
	}
	sessions, _ := r.load()
	if sessions >= c.cfg.ReplicaCapacity {
		c.m.refused.Inc()
		c.cfg.Events.RecordAt(now, EventRefuse, replicaNode(replicaID), "replica full")
		return &session.AdmissionError{
			Reason: fmt.Sprintf("replica %d full", replicaID), RetryAfter: c.cfg.RetryAfter}, reasonReplicaFull
	}
	return nil, 0
}

func (c *Coordinator) statusNameLocked(id int) string {
	if r, ok := c.replicas[id]; ok {
		return r.status.String()
	}
	return "unknown"
}

// Ack records uplink progress for a session so a later resume can tell
// the client how much of its stream survived. Shard-local: a thousand
// relays acking every 64 frames never touch the placement lock.
func (c *Coordinator) Ack(token, seq uint64) {
	sh := c.shard(token)
	c.lockShard(sh)
	defer sh.mu.Unlock()
	if rec, ok := sh.records[token]; ok && seq > rec.LastAckSeq {
		rec.LastAckSeq = seq
	}
}

// End retires a session terminally (client said Bye): the token is
// forgotten and the placement count released. Server-side deaths do NOT
// End — the record is exactly what lets the session come back.
func (c *Coordinator) End(token uint64) {
	sh := c.shard(token)
	c.lockShard(sh)
	rec, ok := sh.records[token]
	if !ok {
		sh.mu.Unlock()
		return
	}
	delete(sh.records, token)
	c.logDecision(sh, decEnd, 0, int32(rec.Replica), token, rec.Epoch)
	sh.mu.Unlock()

	c.lockGlobal()
	if r, live := c.replicas[rec.Replica]; live && r.count > 0 {
		r.count--
	}
	c.mu.Unlock()
	c.cfg.Events.Record(EventEnd, replicaNode(rec.Replica), "")
}

// Lookup returns a copy of a token's record.
func (c *Coordinator) Lookup(token uint64) (Record, bool) {
	sh := c.shard(token)
	c.lockShard(sh)
	defer sh.mu.Unlock()
	if rec, ok := sh.records[token]; ok {
		return *rec, true
	}
	return Record{}, false
}

// Sessions returns how many sessions the coordinator has placed on a
// replica (its own count, not the probe's).
func (c *Coordinator) Sessions(replicaID int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.replicas[replicaID]; ok {
		return r.count
	}
	return 0
}

// Placed returns copies of every record currently placed on a replica —
// the displaced population when that replica dies or drains.
func (c *Coordinator) Placed(replicaID int) []Record {
	var out []Record
	for i := range c.shards {
		sh := &c.shards[i]
		c.lockShard(sh)
		for _, rec := range sh.records {
			if rec.Replica == replicaID {
				out = append(out, *rec)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Token < out[j].Token })
	return out
}

// DrainReplica marks a replica Draining and returns its population; the
// caller shuts the underlying server down gracefully (its Bye carries
// Retry-After, so every session is invited to resume elsewhere).
func (c *Coordinator) DrainReplica(replicaID int) []Record {
	c.SetStatus(replicaID, Draining)
	return c.Placed(replicaID)
}

// KillReplica marks a replica Down and returns the displaced records.
// Their resume tokens stay valid — that is the survivability contract.
func (c *Coordinator) KillReplica(replicaID int) []Record {
	c.SetStatus(replicaID, Down)
	return c.Placed(replicaID)
}

// admission adapts the coordinator to one replica's session.Admission.
type admission struct {
	c       *Coordinator
	replica int
	now     func() float64
}

// Admit implements session.Admission.
func (a admission) Admit(sessionID uint64, h wire.Hello) (wire.Welcome, error) {
	return a.c.AdmitOn(a.now(), a.replica, sessionID, h)
}

// Admission returns the session.Admission a replica's server config
// should embed, binding the coordinator to that replica under the given
// clock (wall for production, virtual for the bench).
func (c *Coordinator) Admission(replicaID int, now func() float64) session.Admission {
	if now == nil {
		start := time.Now()
		now = func() float64 { return time.Since(start).Seconds() }
	}
	return admission{c: c, replica: replicaID, now: now}
}
