package fleet

// Trace-ref propagation through the gateway (satellite of the fleet
// observability PR): the handshake frames must relay their trace refs
// verbatim — including across resume, where the gateway rewrites the
// Welcome payload but must not touch its header ref — and, when a hop
// collector is installed, relayed data frames must be re-parented onto
// gateway hop spans so stitched traces show the relay.

import (
	"net"
	"sync"
	"testing"
	"time"

	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
)

// fakeReplica speaks raw wire protocol on one conn: it answers the Hello
// with a Welcome carrying welcomeRef in its header, then echoes every
// data frame back as a Pose whose ref parents the received span.
type fakeReplica struct {
	welcomeRef telemetry.SpanRef
	tracer     *telemetry.SpanCollector

	mu         sync.Mutex
	helloRefs  []telemetry.SpanRef
	uplinkRefs []telemetry.SpanRef
}

func (fr *fakeReplica) serve(conn net.Conn, sessionID uint64) {
	r, w := wire.NewReader(conn), wire.NewWriter(conn)
	f, err := r.ReadFrame()
	if err != nil || f.Type != wire.TypeHello {
		_ = conn.Close()
		return
	}
	fr.mu.Lock()
	fr.helloRefs = append(fr.helloRefs, f.Trace)
	fr.mu.Unlock()
	_ = w.WriteFrame(wire.Frame{Type: wire.TypeWelcome, Trace: fr.welcomeRef,
		Payload: wire.AppendWelcome(nil, wire.Welcome{Proto: wire.Version, Session: sessionID})})
	for {
		f, err := r.ReadFrame()
		if err != nil || f.Type == wire.TypeBye {
			_ = conn.Close()
			return
		}
		fr.mu.Lock()
		fr.uplinkRefs = append(fr.uplinkRefs, f.Trace)
		fr.mu.Unlock()
		ref := fr.tracer.Emit("integrator", f.Trace.Trace, 0, 0, f.Trace.Span)
		if err := w.WriteFrame(wire.Frame{Type: wire.TypePose, Trace: ref,
			Payload: wire.AppendPose(nil, wire.Pose{T: 1})}); err != nil {
			_ = conn.Close()
			return
		}
	}
}

func traceGateway(t *testing.T, fr *fakeReplica, spans *telemetry.SpanCollector) *Gateway {
	t.Helper()
	coord := NewCoordinator(Config{ReplicaCapacity: 8, TokenSeed: 1,
		ResumeBurst: 64, ResumeWindowSec: 1})
	coord.AddReplica(0, nil)
	var sid uint64
	var mu sync.Mutex
	gw := &Gateway{
		Coord: coord,
		Spans: spans,
		Dial: func(int) (net.Conn, error) {
			c, s := net.Pipe()
			mu.Lock()
			sid++
			id := sid
			mu.Unlock()
			go fr.serve(s, id)
			return c, nil
		},
		HandshakeTimeout: 5 * time.Second,
	}
	return gw
}

func handshake(t *testing.T, gw *Gateway, hello wire.Hello, helloRef telemetry.SpanRef) (net.Conn, *wire.Reader, *wire.Writer, wire.Frame) {
	t.Helper()
	c, g := net.Pipe()
	gw.HandleConn(g)
	r, w := wire.NewReader(c), wire.NewWriter(c)
	hello.Proto = wire.Version
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeHello, Trace: helloRef,
		Payload: wire.AppendHello(nil, hello)}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatalf("awaiting welcome: %v", err)
	}
	if f.Type != wire.TypeWelcome {
		t.Fatalf("got %v, want welcome", f.Type)
	}
	return c, r, w, f
}

func TestGatewayPreservesHandshakeTraceRefsAcrossResume(t *testing.T) {
	replicaTracer := telemetry.NewSpanCollector(0)
	replicaTracer.SetIDBase(1 << 40)
	welcomeRef := replicaTracer.Emit("handshake", 0, 0, 0)
	fr := &fakeReplica{welcomeRef: welcomeRef, tracer: replicaTracer}
	gw := traceGateway(t, fr, nil)

	helloRef := telemetry.SpanRef{Trace: 0xabc, Span: 0x111}
	conn, _, _, wf := handshake(t, gw, wire.Hello{App: "xr"}, helloRef)
	if wf.Trace != welcomeRef {
		t.Errorf("fresh welcome header ref = %+v, want the replica's %+v", wf.Trace, welcomeRef)
	}
	wel, err := wire.DecodeWelcome(wf.Payload)
	if err != nil || wel.ResumeToken == 0 {
		t.Fatalf("welcome = %+v err %v", wel, err)
	}
	fr.mu.Lock()
	gotHello := append([]telemetry.SpanRef{}, fr.helloRefs...)
	fr.mu.Unlock()
	if len(gotHello) != 1 || gotHello[0] != helloRef {
		t.Errorf("replica saw hello refs %+v, want [%+v]", gotHello, helloRef)
	}
	_ = conn.Close()

	// resume: the gateway strips the token before dialing the replica and
	// rewrites the Welcome payload (Resumed, epoch) — but both header
	// trace refs must ride through untouched.
	resumeRef := telemetry.SpanRef{Trace: 0xabc, Span: 0x222}
	conn2, _, _, wf2 := handshake(t, gw,
		wire.Hello{App: "xr", ResumeToken: wel.ResumeToken, LastSeq: 3}, resumeRef)
	defer func() { _ = conn2.Close() }()
	if wf2.Trace != welcomeRef {
		t.Errorf("resumed welcome header ref = %+v, want %+v", wf2.Trace, welcomeRef)
	}
	wel2, err := wire.DecodeWelcome(wf2.Payload)
	if err != nil || !wel2.Resumed || wel2.ResumeToken != wel.ResumeToken {
		t.Fatalf("resumed welcome = %+v err %v", wel2, err)
	}
	fr.mu.Lock()
	gotHello = append([]telemetry.SpanRef{}, fr.helloRefs...)
	fr.mu.Unlock()
	if len(gotHello) != 2 || gotHello[1] != resumeRef {
		t.Errorf("replica saw hello refs %+v, want second = %+v", gotHello, resumeRef)
	}
}

func TestGatewayHopSpansReparentRelayedFrames(t *testing.T) {
	replicaTracer := telemetry.NewSpanCollector(0)
	replicaTracer.SetIDBase(1 << 40)
	fr := &fakeReplica{tracer: replicaTracer}
	gwSpans := telemetry.NewSpanCollector(0)
	gw := traceGateway(t, fr, gwSpans)

	conn, r, w, _ := handshake(t, gw, wire.Hello{App: "xr"}, telemetry.SpanRef{})
	defer func() { _ = conn.Close() }()

	clientRef := telemetry.SpanRef{Trace: 7, Span: 5}
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeIMU, Trace: clientRef,
		Payload: wire.AppendIMU(nil, wireIMU(0.01))}); err != nil {
		t.Fatal(err)
	}
	pf, err := r.ReadFrame()
	if err != nil || pf.Type != wire.TypePose {
		t.Fatalf("pose frame: %v %v", pf.Type, err)
	}

	// uplink: the replica must have seen a gateway span, same trace,
	// different (re-parented) span id from the gateway's id range
	fr.mu.Lock()
	upRefs := append([]telemetry.SpanRef{}, fr.uplinkRefs...)
	fr.mu.Unlock()
	if len(upRefs) != 1 {
		t.Fatalf("replica uplink refs = %+v", upRefs)
	}
	up := upRefs[0]
	if up.Trace != clientRef.Trace {
		t.Errorf("uplink trace id changed: %+v", up)
	}
	if uint64(up.Span) < GatewayIDBase {
		t.Errorf("uplink span %#x not from the gateway id range", uint64(up.Span))
	}
	gwUp, ok := gwSpans.Get(up.Span)
	if !ok || gwUp.Name != CompGatewayUp {
		t.Fatalf("gateway span for %#x = %+v (ok=%v)", uint64(up.Span), gwUp, ok)
	}
	if len(gwUp.Parents) != 1 || gwUp.Parents[0] != clientRef.Span {
		t.Errorf("gw_uplink parents = %v, want [%#x]", gwUp.Parents, uint64(clientRef.Span))
	}

	// downlink: the pose the client received must be re-parented onto a
	// gw_downlink span whose parent is the replica's integrator span
	if uint64(pf.Trace.Span) < GatewayIDBase {
		t.Fatalf("downlink span %#x not from the gateway id range", uint64(pf.Trace.Span))
	}
	gwDown, ok := gwSpans.Get(pf.Trace.Span)
	if !ok || gwDown.Name != CompGatewayDown {
		t.Fatalf("gateway downlink span = %+v (ok=%v)", gwDown, ok)
	}
	integ := replicaTracer.Find("integrator")
	if len(integ) != 1 {
		t.Fatalf("replica integrator spans = %+v", integ)
	}
	if len(gwDown.Parents) != 1 || gwDown.Parents[0] != integ[0].ID {
		t.Errorf("gw_downlink parents = %v, want [%#x]", gwDown.Parents, uint64(integ[0].ID))
	}
}
