package fleet

import (
	"sync"
	"testing"

	"illixr/internal/netxr/wire"
)

// driveAdmissionScript replays one canonical admission sequence —
// fresh admits, acks, resumes across a replica kill, refusals of every
// flavor, and terminal ends — against a coordinator and returns its
// decision fingerprint.
func driveAdmissionScript(t *testing.T, shards int) uint64 {
	t.Helper()
	c := NewCoordinator(Config{
		Shards:          shards,
		ReplicaCapacity: 8,
		ResumeBurst:     4,
		TokenSeed:       42,
	})
	for id := 0; id < 3; id++ {
		c.AddReplica(id, nil)
	}

	var tokens []uint64
	now := 0.0
	// fresh admissions up to the fleet's full capacity (3×8)
	for i := 0; i < 24; i++ {
		rid, err := c.Pick(now, wire.Hello{App: "scale"})
		if err != nil {
			t.Fatalf("pick %d: %v", i, err)
		}
		w, err := c.AdmitOn(now, rid, uint64(i+1), wire.Hello{App: "scale"})
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		tokens = append(tokens, w.ResumeToken)
		now += 0.01
	}
	// a replica-full refusal: every replica is at capacity now
	if _, err := c.AdmitOn(now, 0, 99, wire.Hello{App: "scale"}); err == nil {
		t.Fatal("want full refusal")
	}
	// acks advance
	for i, tok := range tokens {
		c.Ack(tok, uint64(100+i))
	}
	// terminal ends for half the population — frees the headroom the
	// displaced sessions below resume into
	for i := 0; i < len(tokens); i += 2 {
		c.End(tokens[i])
	}
	// kill a replica, resume its population elsewhere
	displaced := c.KillReplica(1)
	resumed := 0
	for _, rec := range displaced {
		rid, err := c.Pick(now, wire.Hello{App: "scale", ResumeToken: rec.Token})
		if err != nil {
			continue
		}
		if _, err := c.AdmitOn(now, rid, 1000+rec.Token, wire.Hello{App: "scale", ResumeToken: rec.Token}); err == nil {
			resumed++
		}
		now += 0.001
	}
	if resumed == 0 {
		t.Fatal("no session resumed")
	}
	// unknown token and down-replica refusals
	if _, err := c.AdmitOn(now, 0, 7, wire.Hello{ResumeToken: 0xdead}); err == nil {
		t.Fatal("want unknown-token refusal")
	}
	if _, err := c.AdmitOn(now, 1, 8, wire.Hello{App: "scale"}); err == nil {
		t.Fatal("want down-replica refusal")
	}
	return c.DecisionFingerprint()
}

// TestDecisionFingerprintShardInvariant: the same admission script must
// fingerprint identically at every shard count — the proof that
// sharding the registry did not change a single decision.
func TestDecisionFingerprintShardInvariant(t *testing.T) {
	base := driveAdmissionScript(t, 1)
	if base == 0 {
		t.Fatal("empty fingerprint")
	}
	for _, shards := range []int{4, 16} {
		if fp := driveAdmissionScript(t, shards); fp != base {
			t.Fatalf("fingerprint at %d shards = %#x, want %#x (1 shard)", shards, fp, base)
		}
	}
}

// TestTokenSequenceMatchesSplitmix: the atomic token draw must issue
// the exact sequence the single-lock splitmix64 state did.
func TestTokenSequenceMatchesSplitmix(t *testing.T) {
	c := NewCoordinator(Config{TokenSeed: 7})
	seed := uint64(7)
	state := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for i := 0; i < 64; i++ {
		want := splitmix64(&state)
		if got := c.nextToken(); got != want {
			t.Fatalf("token %d = %#x, want %#x", i, got, want)
		}
	}
}

// TestShardedAckEndStorm hammers ack/end/lookup from many goroutines
// (run under -race by make check) while fresh admissions continue: the
// shard locks must keep the registry consistent and the placement
// counts must balance out.
func TestShardedAckEndStorm(t *testing.T) {
	const replicas = 4
	const sessions = 64
	const ackers = 8

	c := NewCoordinator(Config{Shards: 8, ReplicaCapacity: sessions, TokenSeed: 3})
	for id := 0; id < replicas; id++ {
		c.AddReplica(id, nil)
	}
	tokens := make([]uint64, sessions)
	for i := range tokens {
		w, err := c.AdmitOn(0, i%replicas, uint64(i+1), wire.Hello{App: "storm"})
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		tokens[i] = w.ResumeToken
	}

	var wg sync.WaitGroup
	for g := 0; g < ackers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := uint64(1); seq <= 500; seq++ {
				for _, tok := range tokens {
					c.Ack(tok, seq*uint64(g+1))
					if seq%64 == 0 {
						c.Lookup(tok)
					}
				}
			}
		}()
	}
	// enders race the ackers
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, tok := range tokens[:sessions/2] {
			c.End(tok)
		}
	}()
	wg.Wait()

	// surviving half: acked to the max any acker reached
	for _, tok := range tokens[sessions/2:] {
		rec, ok := c.Lookup(tok)
		if !ok {
			t.Fatalf("token %#x vanished", tok)
		}
		if rec.LastAckSeq != 500*uint64(ackers) {
			t.Fatalf("token %#x LastAckSeq = %d, want %d", tok, rec.LastAckSeq, 500*ackers)
		}
	}
	// ended half gone; placement counts balance
	for _, tok := range tokens[:sessions/2] {
		if _, ok := c.Lookup(tok); ok {
			t.Fatalf("ended token %#x still present", tok)
		}
	}
	total := 0
	for id := 0; id < replicas; id++ {
		total += c.Sessions(id)
	}
	if total != sessions/2 {
		t.Fatalf("placement counts sum to %d, want %d", total, sessions/2)
	}
}
