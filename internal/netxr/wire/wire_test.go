package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"illixr/internal/mathx"
	"illixr/internal/sensors"
	"illixr/internal/telemetry"
)

func testFrame(t Type, payload []byte) Frame {
	return Frame{
		Type:    t,
		Trace:   telemetry.SpanRef{Trace: 0xdeadbeefcafe, Span: 0x1234},
		Payload: payload,
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, {0x01}, bytes.Repeat([]byte{0xab}, 300), make([]byte, MaxPayload)} {
		in := testFrame(TypeIMU, payload)
		enc := AppendFrame(nil, in)
		out, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode payload len %d: %v", len(payload), err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		if out.Type != in.Type || out.Trace != in.Trace || !bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := AppendFrame(nil, testFrame(TypePose, []byte{1, 2, 3}))

	// every strict prefix must report truncation, never panic
	for i := 0; i < len(valid); i++ {
		if _, _, err := Decode(valid[:i]); err == nil {
			t.Fatalf("prefix %d decoded", i)
		}
	}

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'Y'
	if _, _, err := Decode(badMagic); !errors.Is(err, ErrMagic) {
		t.Fatalf("magic: %v", err)
	}

	skew := append([]byte(nil), valid...)
	skew[2] = Version + 1
	if _, _, err := Decode(skew); !errors.Is(err, ErrVersion) {
		t.Fatalf("version: %v", err)
	}

	flip := append([]byte(nil), valid...)
	flip[len(flip)-6] ^= 0x40 // payload byte: CRC must catch it
	if _, _, err := Decode(flip); !errors.Is(err, ErrCRC) {
		t.Fatalf("crc: %v", err)
	}

	// hostile length prefix: claims more than MaxPayload
	huge := AppendFrame(nil, testFrame(TypeIMU, nil))[:headerLen]
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0x7f) // ~34 GiB varint
	if _, _, err := Decode(huge); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("too large: %v", err)
	}
}

func TestReaderWriterStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := []Frame{
		testFrame(TypeHello, AppendHello(nil, Hello{Proto: Version, App: "t", IMURateHz: 500, CamRateHz: 15})),
		testFrame(TypeIMU, bytes.Repeat([]byte{7}, 56)),
		testFrame(TypeBye, nil),
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if w.Frames() != 3 || w.Bytes() != uint64(buf.Len()) {
		t.Fatalf("writer counters: %d frames %d bytes (buf %d)", w.Frames(), w.Bytes(), buf.Len())
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	for i, want := range frames {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	// the stream ends exactly on a frame boundary: clean io.EOF
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("want io.EOF at boundary, got %v", err)
	}
	if r.Frames() != 3 {
		t.Fatalf("reader frames = %d", r.Frames())
	}
}

func TestReaderMidFrameEOF(t *testing.T) {
	enc := AppendFrame(nil, testFrame(TypePose, bytes.Repeat([]byte{1}, 64)))
	for _, cut := range []int{1, headerLen - 1, headerLen, headerLen + 2, len(enc) - 1} {
		r := NewReader(bytes.NewReader(enc[:cut]))
		if _, err := r.ReadFrame(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut %d: want ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

// --- message round trips ---------------------------------------------------

func TestHelloRoundTrip(t *testing.T) {
	for _, in := range []Hello{
		{Proto: Version, App: "sponza", Seed: -7, IMURateHz: 500, CamRateHz: 15},
		{Proto: Version, App: "sponza", Seed: 3, IMURateHz: 500, CamRateHz: 15,
			ResumeToken: 0xfeed_beef_cafe, LastSeq: 1 << 40},
	} {
		out, err := DecodeHello(AppendHello(nil, in))
		if err != nil || out != in {
			t.Fatalf("got %+v err %v", out, err)
		}
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	for _, in := range []Welcome{
		{Proto: Version, Session: 1 << 50},
		{Proto: Version, Session: 9, ResumeToken: 0xabcdef, Resumed: true,
			LastAckSeq: 4096, PoseEpoch: 3},
	} {
		out, err := DecodeWelcome(AppendWelcome(nil, in))
		if err != nil || out != in {
			t.Fatalf("got %+v err %v", out, err)
		}
	}
}

func TestWelcomeBadResumedFlag(t *testing.T) {
	// a resumed flag other than 0/1 must be rejected, not truncated
	p := binary.AppendUvarint(nil, uint64(Version))
	p = binary.AppendUvarint(p, 1) // session
	p = binary.AppendUvarint(p, 2) // token
	p = binary.AppendUvarint(p, 7) // bad resumed flag
	p = binary.AppendUvarint(p, 0) // last ack
	p = binary.AppendUvarint(p, 0) // epoch
	if _, err := DecodeWelcome(p); err == nil {
		t.Fatal("resumed flag 7 accepted")
	}
}

func TestIMURoundTrip(t *testing.T) {
	in := sensors.IMUSample{
		T:     1.25,
		Gyro:  mathx.Vec3{X: 0.1, Y: -0.2, Z: math.Pi},
		Accel: mathx.Vec3{X: -9.81, Y: 1e-12, Z: 3},
	}
	p := AppendIMU(nil, in)
	if len(p) != 56 {
		t.Fatalf("IMU payload = %d bytes, want 56", len(p))
	}
	out, err := DecodeIMU(p)
	if err != nil || out != in {
		t.Fatalf("got %+v err %v", out, err)
	}
}

func TestCameraRoundTrip(t *testing.T) {
	in := sensors.CameraFrame{Seq: 42, T: 2.5}
	for i := 0; i < 100; i++ {
		in.Features = append(in.Features, sensors.FeatureObs{ID: i * 3, U: float64(i) + 0.5, V: 480 - float64(i)})
	}
	out, err := DecodeCamera(AppendCamera(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.T != in.T || len(out.Features) != len(in.Features) {
		t.Fatalf("header mismatch: %+v", out)
	}
	for i := range in.Features {
		if out.Features[i] != in.Features[i] {
			t.Fatalf("feature %d: %+v vs %+v", i, out.Features[i], in.Features[i])
		}
	}
}

func TestCameraHostileCount(t *testing.T) {
	// a feature count far beyond the payload's actual room must error
	// without allocating
	p := AppendCamera(nil, sensors.CameraFrame{Seq: 1, T: 1})
	p = p[:len(p)-1]                            // drop the real (zero) count
	p = append(p, 0xff, 0xff, 0xff, 0xff, 0x7f) // claim ~34G features
	if _, err := DecodeCamera(p); err == nil {
		t.Fatal("hostile feature count decoded")
	}
}

func TestPoseRoundTrip(t *testing.T) {
	in := Pose{T: 3.5, Pose: mathx.Pose{
		Pos: mathx.Vec3{X: 1, Y: 2, Z: 3},
		Rot: mathx.Quat{W: 0.5, X: 0.5, Y: 0.5, Z: 0.5},
	}}
	out, err := DecodePose(AppendPose(nil, in))
	if err != nil || out != in {
		t.Fatalf("got %+v err %v", out, err)
	}
}

func TestReprojFrameRoundTrip(t *testing.T) {
	in := ReprojFrame{Seq: 9, T: 1.1, DisplayT: 1.108, W: 2560, H: 1440, Data: []byte{1, 2, 3, 4}}
	out, err := DecodeReprojFrame(AppendReprojFrame(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.T != in.T || out.DisplayT != in.DisplayT ||
		out.W != in.W || out.H != in.H || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("got %+v", out)
	}
}

func TestQoERoundTrip(t *testing.T) {
	in := QoE{Session: 5, MTP: telemetry.MTPSample{T: 1, IMUAge: 0.002, Reproj: 0.001, Swap: 0.004}}
	out, err := DecodeQoE(AppendQoE(nil, in))
	if err != nil || out != in {
		t.Fatalf("got %+v err %v", out, err)
	}
}

func TestPingByeRoundTrip(t *testing.T) {
	pin := Ping{Seq: 77, T: 0.25}
	pout, err := DecodePing(AppendPing(nil, pin))
	if err != nil || pout != pin {
		t.Fatalf("ping: %+v err %v", pout, err)
	}
	bin := Bye{Reason: "server full"}
	bout, err := DecodeBye(AppendBye(nil, bin))
	if err != nil || bout != bin {
		t.Fatalf("bye: %+v err %v", bout, err)
	}
	if bout.Retryable() {
		t.Fatal("bye without retry hint reported retryable")
	}
	rin := Bye{Reason: "fleet full", RetryAfterMs: 250}
	rout, err := DecodeBye(AppendBye(nil, rin))
	if err != nil || rout != rin || !rout.Retryable() {
		t.Fatalf("retryable bye: %+v err %v", rout, err)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	cases := map[string][]byte{
		"hello":   append(AppendHello(nil, Hello{Proto: 1}), 0),
		"welcome": append(AppendWelcome(nil, Welcome{}), 0),
		"imu":     append(AppendIMU(nil, sensors.IMUSample{}), 0),
		"camera":  append(AppendCamera(nil, sensors.CameraFrame{}), 0),
		"pose":    append(AppendPose(nil, Pose{}), 0),
		"reproj":  append(AppendReprojFrame(nil, ReprojFrame{}), 0),
		"qoe":     append(AppendQoE(nil, QoE{}), 0),
		"ping":    append(AppendPing(nil, Ping{}), 0),
		"bye":     append(AppendBye(nil, Bye{}), 0),
	}
	decoders := map[string]func([]byte) error{
		"hello":   func(p []byte) error { _, err := DecodeHello(p); return err },
		"welcome": func(p []byte) error { _, err := DecodeWelcome(p); return err },
		"imu":     func(p []byte) error { _, err := DecodeIMU(p); return err },
		"camera":  func(p []byte) error { _, err := DecodeCamera(p); return err },
		"pose":    func(p []byte) error { _, err := DecodePose(p); return err },
		"reproj":  func(p []byte) error { _, err := DecodeReprojFrame(p); return err },
		"qoe":     func(p []byte) error { _, err := DecodeQoE(p); return err },
		"ping":    func(p []byte) error { _, err := DecodePing(p); return err },
		"bye":     func(p []byte) error { _, err := DecodeBye(p); return err },
	}
	for name, p := range cases {
		if err := decoders[name](p); err == nil {
			t.Errorf("%s: trailing byte accepted", name)
		}
	}
}

func TestShortPayloadsRejected(t *testing.T) {
	full := AppendIMU(nil, sensors.IMUSample{T: 1})
	for i := 0; i < len(full); i++ {
		if _, err := DecodeIMU(full[:i]); err == nil {
			t.Fatalf("imu prefix %d accepted", i)
		}
	}
}

func TestFrameTraceRefStreamRoundTrip(t *testing.T) {
	// The stitch layer partitions span IDs by node (client 0, replica
	// N<<40, gateway 1<<62), so the header must carry the full 64-bit
	// range bit-exactly — including the zero (invalid) ref that marks
	// an uninstrumented frame.
	refs := []telemetry.SpanRef{
		{},
		{Trace: 1, Span: 1},
		{Trace: 5 << 40, Span: 5<<40 + 7},
		{Trace: 1 << 62, Span: 1<<62 + 3},
		{Trace: ^telemetry.TraceID(0), Span: ^telemetry.SpanID(0)},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, ref := range refs {
		if err := w.WriteFrame(Frame{Type: TypePose, Trace: ref, Payload: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	for i, want := range refs {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Trace != want {
			t.Fatalf("frame %d: trace ref %+v round-tripped as %+v", i, want, got.Trace)
		}
		if got.Trace.Valid() != want.Valid() {
			t.Fatalf("frame %d: validity changed across the wire", i)
		}
	}
}
