package wire

import (
	"bytes"
	"io"
	"testing"

	"illixr/internal/telemetry"
)

func rawTestFrames() []Frame {
	big := make([]byte, 4096)
	for i := range big {
		big[i] = byte(i * 7)
	}
	return []Frame{
		{Type: TypeIMU, Trace: telemetry.SpanRef{Trace: 7, Span: 9}, Payload: []byte{1, 2, 3}},
		{Type: TypePose, Payload: []byte{4, 5, 6, 7}},
		{Type: TypeFrame, Trace: telemetry.SpanRef{Trace: 1, Span: 2}, Payload: big},
		{Type: TypePing, Payload: nil},
		{Type: TypeBye, Payload: []byte("bye")},
	}
}

// TestReadRawRoundTrip: ReadRaw must verify like ReadFrame, peek the
// header fields, and return bytes that re-decode to the original frame.
func TestReadRawRoundTrip(t *testing.T) {
	frames := rawTestFrames()
	var stream []byte
	for _, f := range frames {
		stream = AppendFrame(stream, f)
	}
	r := NewReader(bytes.NewReader(stream))
	var out bytes.Buffer
	w := NewWriter(&out)
	for i, want := range frames {
		raw, err := r.ReadRaw()
		if err != nil {
			t.Fatalf("frame %d: ReadRaw: %v", i, err)
		}
		if raw.Type != want.Type || raw.Trace != want.Trace {
			t.Fatalf("frame %d: peeked %v/%v, want %v/%v", i, raw.Type, raw.Trace, want.Type, want.Trace)
		}
		got, n, err := Decode(raw.Bytes)
		if err != nil || n != len(raw.Bytes) {
			t.Fatalf("frame %d: raw bytes do not decode: %v (n=%d len=%d)", i, err, n, len(raw.Bytes))
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
		if err := w.WriteRaw(raw); err != nil {
			t.Fatalf("frame %d: WriteRaw: %v", i, err)
		}
	}
	if _, err := r.ReadRaw(); err != io.EOF {
		t.Fatalf("after stream: err=%v, want EOF", err)
	}
	if !bytes.Equal(out.Bytes(), stream) {
		t.Fatal("WriteRaw pass-through is not byte-identical to the source stream")
	}
	if r.Frames() != uint64(len(frames)) || w.Frames() != uint64(len(frames)) {
		t.Fatalf("counters: read %d written %d, want %d", r.Frames(), w.Frames(), len(frames))
	}
}

// TestRawSetTrace: the in-place trace rewrite must leave a valid frame
// whose payload is untouched and whose CRC verifies.
func TestRawSetTrace(t *testing.T) {
	src := AppendFrame(nil, Frame{Type: TypeCamera,
		Trace: telemetry.SpanRef{Trace: 11, Span: 22}, Payload: []byte{9, 8, 7, 6, 5}})
	r := NewReader(bytes.NewReader(src))
	raw, err := r.ReadRaw()
	if err != nil {
		t.Fatal(err)
	}
	ref := telemetry.SpanRef{Trace: 11, Span: 12345}
	raw.SetTrace(ref)
	if raw.Trace != ref {
		t.Fatalf("Raw.Trace = %v, want %v", raw.Trace, ref)
	}
	f, n, err := Decode(raw.Bytes)
	if err != nil || n != len(raw.Bytes) {
		t.Fatalf("rewritten frame does not decode: %v", err)
	}
	if f.Trace != ref {
		t.Fatalf("decoded trace %v, want %v", f.Trace, ref)
	}
	if !bytes.Equal(f.Payload, []byte{9, 8, 7, 6, 5}) {
		t.Fatal("payload disturbed by SetTrace")
	}
}

// TestReadRawErrors: raw reads reject the same corruption ReadFrame does.
func TestReadRawErrors(t *testing.T) {
	good := AppendFrame(nil, Frame{Type: TypeIMU, Payload: []byte{1, 2, 3}})
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, err := NewReader(bytes.NewReader(corrupt)).ReadRaw(); err != ErrCRC {
		t.Fatalf("corrupt CRC: err=%v, want ErrCRC", err)
	}
	if _, err := NewReader(bytes.NewReader(good[:5])).ReadRaw(); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame: err=%v, want ErrUnexpectedEOF", err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 'Z'
	if _, err := NewReader(bytes.NewReader(bad)).ReadRaw(); err != ErrMagic {
		t.Fatalf("bad magic: err=%v, want ErrMagic", err)
	}
}

// blockingReader serves one prefilled chunk, then blocks forever would
// be a deadlock — instead it errors, so a FrameBuffered bug fails fast.
type oneShotReader struct {
	data []byte
	done bool
}

func (o *oneShotReader) Read(p []byte) (int, error) {
	if o.done {
		return 0, io.ErrNoProgress // a blocking read would hang the test
	}
	o.done = true
	n := copy(p, o.data)
	return n, nil
}

// TestFrameBuffered: with two whole frames and a torn third in the
// buffer, exactly two non-blocking reads must be possible.
func TestFrameBuffered(t *testing.T) {
	f1 := AppendFrame(nil, Frame{Type: TypeIMU, Payload: []byte{1}})
	f2 := AppendFrame(nil, Frame{Type: TypePose, Payload: []byte{2, 3}})
	f3 := AppendFrame(nil, Frame{Type: TypeQoE, Payload: []byte{4, 5, 6}})
	stream := append(append(append([]byte(nil), f1...), f2...), f3[:len(f3)-3]...)

	r := NewReader(&oneShotReader{data: stream})
	if r.FrameBuffered() {
		t.Fatal("nothing read yet: bufio buffer is empty, FrameBuffered must be false")
	}
	if _, err := r.ReadRaw(); err != nil { // fills the bufio buffer
		t.Fatal(err)
	}
	if !r.FrameBuffered() {
		t.Fatal("a complete second frame is buffered, FrameBuffered must be true")
	}
	if _, err := r.ReadRaw(); err != nil {
		t.Fatal(err)
	}
	if r.FrameBuffered() {
		t.Fatal("only a torn frame remains, FrameBuffered must be false")
	}
}

// TestWriterCoalesce: a queued batch must hit the wire as one Write
// whose bytes are identical to per-frame writes.
type countingWriter struct {
	bytes.Buffer
	writes int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.writes++
	return c.Buffer.Write(p)
}

func TestWriterCoalesce(t *testing.T) {
	frames := rawTestFrames()
	var ref bytes.Buffer
	wr := NewWriter(&ref)
	for _, f := range frames {
		if err := wr.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}

	var out countingWriter
	w := NewWriter(&out)
	for _, f := range frames {
		w.Queue(f)
	}
	if w.Queued() != len(frames) {
		t.Fatalf("Queued() = %d, want %d", w.Queued(), len(frames))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if out.writes != 1 {
		t.Fatalf("coalesced batch took %d writes, want 1", out.writes)
	}
	if !bytes.Equal(out.Bytes(), ref.Bytes()) {
		t.Fatal("coalesced bytes differ from per-frame writes")
	}
	if w.Frames() != uint64(len(frames)) || w.Bytes() != uint64(ref.Len()) {
		t.Fatalf("counters: frames %d bytes %d, want %d/%d", w.Frames(), w.Bytes(), len(frames), ref.Len())
	}
	if err := w.Flush(); err != nil { // empty flush is a no-op
		t.Fatal(err)
	}
	if out.writes != 1 {
		t.Fatal("empty Flush must not touch the wire")
	}
}
