package wire

import (
	"bytes"
	"testing"

	"illixr/internal/sensors"
	"illixr/internal/telemetry"
)

// FuzzWireDecode feeds arbitrary bytes through the slice decoder and — on
// a successful parse — every payload decoder. The invariant is totality:
// corrupted, truncated, hostile input must yield an error, never a panic
// or an unbounded allocation. A successfully decoded frame must re-encode
// to the identical bytes (the codec is canonical). Seeds covering the
// interesting shapes (valid frame, truncation, CRC corruption, version
// skew) are checked in under testdata/fuzz/FuzzWireDecode.
func FuzzWireDecode(f *testing.F) {
	valid := AppendFrame(nil, Frame{
		Type:    TypeIMU,
		Trace:   telemetry.SpanRef{Trace: 3, Span: 9},
		Payload: AppendIMU(nil, sensors.IMUSample{T: 0.002}),
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated
	crc := append([]byte(nil), valid...)
	crc[len(crc)-1] ^= 0xff
	f.Add(crc) // corrupted CRC
	skew := append([]byte(nil), valid...)
	skew[2] = Version + 3
	f.Add(skew) // version skew
	f.Add(AppendFrame(nil, Frame{Type: TypeCamera,
		Payload: AppendCamera(nil, sensors.CameraFrame{Seq: 1, T: 0.1,
			Features: []sensors.FeatureObs{{ID: 1, U: 2, V: 3}}})}))
	f.Add([]byte{Magic0, Magic1})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// canonical re-encode (a non-minimal length varint decodes fine
		// but re-encodes shorter; only equal-length frames must match)
		re := AppendFrame(nil, fr)
		if len(re) == n && !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode differs from wire bytes")
		}
		// payload decoders must be total too
		switch fr.Type {
		case TypeHello:
			_, _ = DecodeHello(fr.Payload)
		case TypeWelcome:
			_, _ = DecodeWelcome(fr.Payload)
		case TypeIMU:
			_, _ = DecodeIMU(fr.Payload)
		case TypeCamera:
			_, _ = DecodeCamera(fr.Payload)
		case TypePose:
			_, _ = DecodePose(fr.Payload)
		case TypeFrame:
			_, _ = DecodeReprojFrame(fr.Payload)
		case TypeQoE:
			_, _ = DecodeQoE(fr.Payload)
		case TypePing, TypePong:
			_, _ = DecodePing(fr.Payload)
		case TypeBye:
			_, _ = DecodeBye(fr.Payload)
		}
	})
}
