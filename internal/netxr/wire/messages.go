// Message payload codecs. Every message has an Append encoder (allocation
// free onto a caller buffer) and a Decode function that validates length
// and returns typed errors — decoders are total functions, never panics.
//
// Encoding conventions: float64 as IEEE-754 bits little-endian (8 bytes),
// counts and small non-negative integers as unsigned varints, signed
// integers as zigzag varints, strings and byte blobs as uvarint length +
// bytes.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"illixr/internal/mathx"
	"illixr/internal/sensors"
	"illixr/internal/telemetry"
)

// dec is a bounds-checked payload cursor.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrShortPay, what, d.off)
	}
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("bytes")
		return nil
	}
	out := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return out
}

// finish errors on unconsumed trailing bytes so version-skewed peers that
// append fields are detected rather than silently half-parsed.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.b)-d.off)
	}
	return nil
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendVec3(dst []byte, v mathx.Vec3) []byte {
	dst = appendF64(dst, v.X)
	dst = appendF64(dst, v.Y)
	return appendF64(dst, v.Z)
}

func (d *dec) vec3() mathx.Vec3 {
	return mathx.Vec3{X: d.f64(), Y: d.f64(), Z: d.f64()}
}

func appendPose(dst []byte, p mathx.Pose) []byte {
	dst = appendVec3(dst, p.Pos)
	dst = appendF64(dst, p.Rot.W)
	dst = appendF64(dst, p.Rot.X)
	dst = appendF64(dst, p.Rot.Y)
	return appendF64(dst, p.Rot.Z)
}

func (d *dec) pose() mathx.Pose {
	return mathx.Pose{
		Pos: d.vec3(),
		Rot: mathx.Quat{W: d.f64(), X: d.f64(), Y: d.f64(), Z: d.f64()},
	}
}

// Hello is the client's opening message: protocol version, a label for
// the session, the deterministic seed driving the client's sensors, and
// the nominal stream rates (the server sizes queues and watchdogs off
// them). ResumeToken is zero for a fresh session; on reconnect the client
// presents the token from its last Welcome plus the highest downlink
// sequence it observed, and the fleet re-places the session instead of
// starting a new one (DESIGN.md §11).
type Hello struct {
	Proto       uint32
	App         string
	Seed        int64
	IMURateHz   float64
	CamRateHz   float64
	ResumeToken uint64 // 0 = fresh session; else the token from a prior Welcome
	LastSeq     uint64 // highest downlink seq the client saw before disconnecting
}

// AppendHello encodes h onto dst.
func AppendHello(dst []byte, h Hello) []byte {
	dst = binary.AppendUvarint(dst, uint64(h.Proto))
	dst = binary.AppendUvarint(dst, uint64(len(h.App)))
	dst = append(dst, h.App...)
	dst = binary.AppendVarint(dst, h.Seed)
	dst = appendF64(dst, h.IMURateHz)
	dst = appendF64(dst, h.CamRateHz)
	dst = binary.AppendUvarint(dst, h.ResumeToken)
	return binary.AppendUvarint(dst, h.LastSeq)
}

// DecodeHello parses a Hello payload.
func DecodeHello(p []byte) (Hello, error) {
	d := &dec{b: p}
	h := Hello{
		Proto: uint32(d.uvarint()),
		App:   string(d.bytes()),
		Seed:  d.varint(),
	}
	h.IMURateHz = d.f64()
	h.CamRateHz = d.f64()
	h.ResumeToken = d.uvarint()
	h.LastSeq = d.uvarint()
	return h, d.finish()
}

// Welcome is the server's handshake reply: the protocol version it
// speaks, the session id it assigned, and the resume state. ResumeToken
// is what the client must present to reconnect; Resumed reports whether
// this handshake restored a prior session; LastAckSeq is the last uplink
// sequence the fleet acknowledged before the disconnect (the client may
// skip replaying anything at or below it); PoseEpoch increments on every
// placement, so a client can tell that downstream pose lineage restarted.
type Welcome struct {
	Proto       uint32
	Session     uint64
	ResumeToken uint64
	Resumed     bool
	LastAckSeq  uint64
	PoseEpoch   uint64
}

// AppendWelcome encodes w onto dst.
func AppendWelcome(dst []byte, w Welcome) []byte {
	dst = binary.AppendUvarint(dst, uint64(w.Proto))
	dst = binary.AppendUvarint(dst, w.Session)
	dst = binary.AppendUvarint(dst, w.ResumeToken)
	var resumed uint64
	if w.Resumed {
		resumed = 1
	}
	dst = binary.AppendUvarint(dst, resumed)
	dst = binary.AppendUvarint(dst, w.LastAckSeq)
	return binary.AppendUvarint(dst, w.PoseEpoch)
}

// DecodeWelcome parses a Welcome payload.
func DecodeWelcome(p []byte) (Welcome, error) {
	d := &dec{b: p}
	w := Welcome{Proto: uint32(d.uvarint()), Session: d.uvarint()}
	w.ResumeToken = d.uvarint()
	resumed := d.uvarint()
	if d.err == nil && resumed > 1 {
		return w, fmt.Errorf("%w: resumed flag %d", ErrShortPay, resumed)
	}
	w.Resumed = resumed == 1
	w.LastAckSeq = d.uvarint()
	w.PoseEpoch = d.uvarint()
	return w, d.finish()
}

// AppendIMU encodes one inertial sample (56 bytes).
func AppendIMU(dst []byte, s sensors.IMUSample) []byte {
	dst = appendF64(dst, s.T)
	dst = appendVec3(dst, s.Gyro)
	return appendVec3(dst, s.Accel)
}

// DecodeIMU parses an IMU payload.
func DecodeIMU(p []byte) (sensors.IMUSample, error) {
	d := &dec{b: p}
	s := sensors.IMUSample{T: d.f64(), Gyro: d.vec3(), Accel: d.vec3()}
	return s, d.finish()
}

// AppendCamera encodes one stereo-rectified camera frame: sequence
// number, timestamp, and the tracked feature observations (the geometric
// channel the VIO back end consumes).
func AppendCamera(dst []byte, f sensors.CameraFrame) []byte {
	dst = binary.AppendVarint(dst, int64(f.Seq))
	dst = appendF64(dst, f.T)
	dst = binary.AppendUvarint(dst, uint64(len(f.Features)))
	for _, ob := range f.Features {
		dst = binary.AppendVarint(dst, int64(ob.ID))
		dst = appendF64(dst, ob.U)
		dst = appendF64(dst, ob.V)
	}
	return dst
}

// maxCameraFeatures bounds the decoded feature count so a corrupted
// varint cannot drive a huge allocation (a real frame tracks <= a few
// hundred).
const maxCameraFeatures = 1 << 16

// DecodeCamera parses a Camera payload.
func DecodeCamera(p []byte) (sensors.CameraFrame, error) {
	d := &dec{b: p}
	f := sensors.CameraFrame{Seq: int(d.varint()), T: d.f64()}
	n := d.uvarint()
	if d.err == nil && n > maxCameraFeatures {
		return f, fmt.Errorf("%w: %d features", ErrTooLarge, n)
	}
	// cap the preallocation by what the payload could actually hold
	// (>= 10 bytes per feature) so a lying count cannot balloon memory
	if d.err == nil {
		if room := uint64(len(p)-d.off) / 10; n > room+1 {
			return f, fmt.Errorf("%w: feature count %d exceeds payload", ErrShortPay, n)
		}
		f.Features = make([]sensors.FeatureObs, 0, n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		f.Features = append(f.Features, sensors.FeatureObs{
			ID: int(d.varint()), U: d.f64(), V: d.f64(),
		})
	}
	return f, d.finish()
}

// Pose is a timestamped pose estimate flowing downstream: T is the
// sensor time the estimate is valid for (the MTP anchor), Pose the body
// pose in the world frame.
type Pose struct {
	T    float64
	Pose mathx.Pose
}

// AppendPose encodes a pose message (64 bytes).
func AppendPose(dst []byte, p Pose) []byte {
	dst = appendF64(dst, p.T)
	return appendPose(dst, p.Pose)
}

// DecodePose parses a Pose payload.
func DecodePose(p []byte) (Pose, error) {
	d := &dec{b: p}
	out := Pose{T: d.f64(), Pose: d.pose()}
	return out, d.finish()
}

// ReprojFrame is a reprojected display frame flowing downstream: the
// pose it was warped with, the display timestamp it targets, and an
// opaque payload (encoded image tiles; the synthetic pipeline ships a
// downsampled luma summary).
type ReprojFrame struct {
	Seq      uint64
	T        float64 // source pose time
	DisplayT float64 // targeted vsync
	W, H     uint32
	Data     []byte
}

// AppendReprojFrame encodes a reprojected-frame message.
func AppendReprojFrame(dst []byte, f ReprojFrame) []byte {
	dst = binary.AppendUvarint(dst, f.Seq)
	dst = appendF64(dst, f.T)
	dst = appendF64(dst, f.DisplayT)
	dst = binary.AppendUvarint(dst, uint64(f.W))
	dst = binary.AppendUvarint(dst, uint64(f.H))
	dst = binary.AppendUvarint(dst, uint64(len(f.Data)))
	return append(dst, f.Data...)
}

// DecodeReprojFrame parses a ReprojFrame payload. Data aliases p.
func DecodeReprojFrame(p []byte) (ReprojFrame, error) {
	d := &dec{b: p}
	f := ReprojFrame{
		Seq:      d.uvarint(),
		T:        d.f64(),
		DisplayT: d.f64(),
		W:        uint32(d.uvarint()),
		H:        uint32(d.uvarint()),
		Data:     d.bytes(),
	}
	return f, d.finish()
}

// QoE is a quality-of-experience sample the client reports upstream so
// the server can attribute per-session MTP: the standard MTP breakdown
// plus the session id assigned at handshake.
type QoE struct {
	Session uint64
	MTP     telemetry.MTPSample
}

// AppendQoE encodes a QoE sample.
func AppendQoE(dst []byte, q QoE) []byte {
	dst = binary.AppendUvarint(dst, q.Session)
	dst = appendF64(dst, q.MTP.T)
	dst = appendF64(dst, q.MTP.IMUAge)
	dst = appendF64(dst, q.MTP.Reproj)
	return appendF64(dst, q.MTP.Swap)
}

// DecodeQoE parses a QoE payload.
func DecodeQoE(p []byte) (QoE, error) {
	d := &dec{b: p}
	q := QoE{Session: d.uvarint()}
	q.MTP.T = d.f64()
	q.MTP.IMUAge = d.f64()
	q.MTP.Reproj = d.f64()
	q.MTP.Swap = d.f64()
	return q, d.finish()
}

// Ping carries a sequence number and the sender's session-time stamp;
// the peer echoes both in a Pong, giving a wire-level RTT probe.
type Ping struct {
	Seq uint64
	T   float64
}

// AppendPing encodes a ping (or pong — same payload shape).
func AppendPing(dst []byte, p Ping) []byte {
	dst = binary.AppendUvarint(dst, p.Seq)
	return appendF64(dst, p.T)
}

// DecodePing parses a Ping/Pong payload.
func DecodePing(p []byte) (Ping, error) {
	d := &dec{b: p}
	out := Ping{Seq: d.uvarint(), T: d.f64()}
	return out, d.finish()
}

// Bye announces a graceful close with a human-readable reason; after
// sending it a peer flushes and closes. RetryAfterMs is the admission
// control hint: non-zero means the refusal (or drain) is transient and
// the client should reconnect — with its resume token — after at least
// that many milliseconds. Zero means the close is final.
type Bye struct {
	Reason       string
	RetryAfterMs uint32
}

// Retryable reports whether the peer invited a reconnect.
func (b Bye) Retryable() bool { return b.RetryAfterMs > 0 }

// AppendBye encodes a Bye.
func AppendBye(dst []byte, b Bye) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b.Reason)))
	dst = append(dst, b.Reason...)
	return binary.AppendUvarint(dst, uint64(b.RetryAfterMs))
}

// DecodeBye parses a Bye payload.
func DecodeBye(p []byte) (Bye, error) {
	d := &dec{b: p}
	b := Bye{Reason: string(d.bytes())}
	retry := d.uvarint()
	if d.err == nil && retry > math.MaxUint32 {
		return b, fmt.Errorf("%w: retry_after %d ms", ErrTooLarge, retry)
	}
	b.RetryAfterMs = uint32(retry)
	return b, d.finish()
}
