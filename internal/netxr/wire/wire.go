// Package wire is the binary wire protocol of the edge-offload split
// (DESIGN.md §9): length-prefixed frames with a versioned fixed header,
// varint-encoded payloads, and a trailing CRC-32 over the whole frame.
// The header carries the causal-trace reference of the event it wraps, so
// spans survive the network hop and a display frame on the client can
// still be walked back to the IMU sample that produced it — even when
// the integration happened on a server.
//
// Frame layout (all multi-byte integers little-endian):
//
//	offset  size  field
//	0       2     magic 0x58 0x52 ("XR")
//	2       1     protocol version (Version)
//	3       1     message type (Type)
//	4       8     trace id   (telemetry.TraceID of the wrapped event)
//	12      8     span id    (telemetry.SpanID that produced the event)
//	20      1-5   payload length, unsigned varint, <= MaxPayload
//	...     n     payload (message-specific encoding, messages.go)
//	...     4     CRC-32 (IEEE) over every preceding byte of the frame
//
// Decoding is total: truncated frames, corrupted CRCs, bad magic and
// version skew all return typed errors and never panic (FuzzWireDecode
// enforces this).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"illixr/internal/telemetry"
)

// Magic bytes opening every frame ("XR").
const (
	Magic0 = 0x58
	Magic1 = 0x52
)

// Version is the protocol version this build speaks. A decoder receiving
// any other version returns ErrVersion — the session layer then refuses
// the peer instead of misparsing its stream. v2 added session resume:
// Hello carries a resume token and the client's last-seen downlink seq,
// Welcome answers with the token to present on reconnect plus the resume
// snapshot (last acked uplink seq, pose epoch), and Bye carries a
// machine-readable Retry-After hint for admission-control refusals.
const Version = 2

// MaxPayload bounds a single frame's payload (1 MiB) so a corrupted or
// hostile length prefix cannot make the reader allocate unbounded memory.
const MaxPayload = 1 << 20

// headerLen is the fixed part of the header before the varint length.
const headerLen = 20

// Type identifies the message carried by a frame.
type Type uint8

// Message types. Upstream (client→server): Hello, IMU, Camera, QoE,
// Ping, Bye. Downstream (server→client): Welcome, Pose, Frame, Pong, Bye.
const (
	TypeInvalid Type = 0
	TypeHello   Type = 1
	TypeWelcome Type = 2
	TypeIMU     Type = 3
	TypeCamera  Type = 4
	TypePose    Type = 5
	TypeFrame   Type = 6
	TypeQoE     Type = 7
	TypePing    Type = 8
	TypePong    Type = 9
	TypeBye     Type = 10
)

func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeWelcome:
		return "welcome"
	case TypeIMU:
		return "imu"
	case TypeCamera:
		return "camera"
	case TypePose:
		return "pose"
	case TypeFrame:
		return "frame"
	case TypeQoE:
		return "qoe"
	case TypePing:
		return "ping"
	case TypePong:
		return "pong"
	case TypeBye:
		return "bye"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Decode errors. ErrTruncated wraps io.ErrUnexpectedEOF semantics for
// slice-based decoding; the streaming Reader returns io errors directly.
var (
	ErrMagic     = errors.New("wire: bad magic")
	ErrVersion   = errors.New("wire: protocol version mismatch")
	ErrTooLarge  = errors.New("wire: payload length exceeds MaxPayload")
	ErrCRC       = errors.New("wire: CRC mismatch")
	ErrTruncated = errors.New("wire: truncated frame")
	ErrShortPay  = errors.New("wire: payload too short")
	ErrTrailing  = errors.New("wire: trailing bytes after payload")
)

// Frame is one decoded protocol frame: the message type, the causal-trace
// reference of the wrapped event, and the raw payload (decode it with the
// matching Decode* function from messages.go).
type Frame struct {
	Type    Type
	Trace   telemetry.SpanRef
	Payload []byte
}

// AppendFrame encodes f onto dst and returns the extended slice. The
// payload is copied, so f.Payload may be reused immediately.
func AppendFrame(dst []byte, f Frame) []byte {
	start := len(dst)
	dst = append(dst, Magic0, Magic1, Version, byte(f.Type))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.Trace.Trace))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.Trace.Span))
	dst = binary.AppendUvarint(dst, uint64(len(f.Payload)))
	dst = append(dst, f.Payload...)
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// Decode parses one frame from the front of b, returning the frame and
// the number of bytes consumed. The returned payload aliases b.
func Decode(b []byte) (Frame, int, error) {
	var f Frame
	if len(b) < headerLen+1 {
		return f, 0, ErrTruncated
	}
	if b[0] != Magic0 || b[1] != Magic1 {
		return f, 0, ErrMagic
	}
	if b[2] != Version {
		return f, 0, fmt.Errorf("%w: got %d want %d", ErrVersion, b[2], Version)
	}
	f.Type = Type(b[3])
	f.Trace.Trace = telemetry.TraceID(binary.LittleEndian.Uint64(b[4:12]))
	f.Trace.Span = telemetry.SpanID(binary.LittleEndian.Uint64(b[12:20]))
	n, vlen := binary.Uvarint(b[headerLen:])
	if vlen <= 0 {
		return f, 0, ErrTruncated
	}
	if n > MaxPayload {
		return f, 0, ErrTooLarge
	}
	total := headerLen + vlen + int(n) + 4
	if len(b) < total {
		return f, 0, ErrTruncated
	}
	body := b[:total-4]
	want := binary.LittleEndian.Uint32(b[total-4 : total])
	if crc32.ChecksumIEEE(body) != want {
		return f, 0, ErrCRC
	}
	f.Payload = b[headerLen+vlen : total-4]
	return f, total, nil
}

// Reader decodes frames from a byte stream, buffering internally. Not
// safe for concurrent use.
type Reader struct {
	br  *bufio.Reader
	buf []byte

	frames uint64
	bytes  uint64
}

// NewReader wraps r for frame decoding.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Frames returns the number of frames successfully decoded.
func (r *Reader) Frames() uint64 { return r.frames }

// Bytes returns the number of stream bytes consumed by decoded frames.
func (r *Reader) Bytes() uint64 { return r.bytes }

// ReadFrame reads and verifies the next frame. The returned payload is
// valid until the next ReadFrame call. io.EOF is returned only on a
// clean frame boundary; a partial frame yields io.ErrUnexpectedEOF.
func (r *Reader) ReadFrame() (Frame, error) {
	typ, trace, full, payStart, err := r.readRaw()
	if err != nil {
		return Frame{}, err
	}
	return Frame{Type: typ, Trace: trace, Payload: full[payStart : len(full)-4]}, nil
}

// readRaw reads one verified frame into the reader's scratch, returning
// the header peeks, the full encoded frame, and the payload offset. The
// shared body of ReadFrame and ReadRaw.
func (r *Reader) readRaw() (Type, telemetry.SpanRef, []byte, int, error) {
	var typ Type
	var trace telemetry.SpanRef
	hdr := r.grow(headerLen)
	if _, err := io.ReadFull(r.br, hdr); err != nil {
		if err == io.ErrUnexpectedEOF {
			return typ, trace, nil, 0, io.ErrUnexpectedEOF
		}
		return typ, trace, nil, 0, err
	}
	if hdr[0] != Magic0 || hdr[1] != Magic1 {
		return typ, trace, nil, 0, ErrMagic
	}
	if hdr[2] != Version {
		return typ, trace, nil, 0, fmt.Errorf("%w: got %d want %d", ErrVersion, hdr[2], Version)
	}
	typ = Type(hdr[3])
	trace.Trace = telemetry.TraceID(binary.LittleEndian.Uint64(hdr[4:12]))
	trace.Span = telemetry.SpanID(binary.LittleEndian.Uint64(hdr[12:20]))

	// varint payload length, byte at a time so we never over-read
	var vbuf [binary.MaxVarintLen64]byte
	vlen := 0
	var n uint64
	for {
		c, err := r.br.ReadByte()
		if err != nil {
			return typ, trace, nil, 0, eofToUnexpected(err)
		}
		vbuf[vlen] = c
		vlen++
		if c < 0x80 {
			break
		}
		if vlen == len(vbuf) {
			return typ, trace, nil, 0, ErrTooLarge
		}
	}
	var consumed int
	n, consumed = binary.Uvarint(vbuf[:vlen])
	if consumed <= 0 || n > MaxPayload {
		return typ, trace, nil, 0, ErrTooLarge
	}

	rest := r.grow(headerLen + vlen + int(n) + 4)
	copy(rest, hdr[:headerLen])
	copy(rest[headerLen:], vbuf[:vlen])
	if _, err := io.ReadFull(r.br, rest[headerLen+vlen:]); err != nil {
		return typ, trace, nil, 0, eofToUnexpected(err)
	}
	body := rest[:len(rest)-4]
	want := binary.LittleEndian.Uint32(rest[len(rest)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return typ, trace, nil, 0, ErrCRC
	}
	r.frames++
	r.bytes += uint64(len(rest))
	return typ, trace, rest, headerLen + vlen, nil
}

// grow returns the reader's scratch buffer resized to n bytes.
func (r *Reader) grow(n int) []byte {
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	return r.buf
}

func eofToUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Writer encodes frames onto a byte stream with a reused buffer. Not
// safe for concurrent use; the session layer serializes writers.
//
// Two write disciplines share one buffer: WriteFrame/WriteRaw put one
// frame on the wire immediately, while Queue/QueueRaw + Flush coalesce
// a batch into a single Write (raw.go) — the flush-window path of the
// session writer and the gateway relay.
type Writer struct {
	w      io.Writer
	buf    []byte
	queued int

	frames uint64
	bytes  uint64
}

// NewWriter wraps w for frame encoding.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Frames returns the number of frames written.
func (w *Writer) Frames() uint64 { return w.frames }

// Bytes returns the number of stream bytes written.
func (w *Writer) Bytes() uint64 { return w.bytes }

// WriteFrame encodes and writes one frame (Queue + Flush).
func (w *Writer) WriteFrame(f Frame) error {
	w.Queue(f)
	return w.Flush()
}
