package wire

import (
	"encoding/binary"
	"hash/crc32"

	"illixr/internal/telemetry"
)

// Raw is one verified frame in its encoded form: the gateway's relay
// currency (DESIGN.md §15). Type and Trace are peeked from the fixed
// header; Bytes is the complete frame — header, varint length, payload
// and CRC — exactly as it arrived. Forwarding a Raw skips the payload
// decode and the re-encode CRC pass a Frame round trip would pay.
//
// Ownership: a Raw returned by ReadRaw aliases the reader's scratch and
// is valid only until the next ReadFrame/ReadRaw on that reader. Anyone
// who needs the bytes beyond that point must copy them before the next
// read — Writer.QueueRaw and binlog's RecordRaw both copy synchronously,
// so handing a Raw straight to either is safe.
type Raw struct {
	Type  Type
	Trace telemetry.SpanRef
	Bytes []byte
}

// SetTrace rewrites the frame's trace reference in place and recomputes
// the trailing CRC — the only mutation the zero-copy relay performs
// (hop-span stitching). The payload is untouched.
func (r *Raw) SetTrace(ref telemetry.SpanRef) {
	b := r.Bytes
	binary.LittleEndian.PutUint64(b[4:12], uint64(ref.Trace))
	binary.LittleEndian.PutUint64(b[12:20], uint64(ref.Span))
	sum := crc32.ChecksumIEEE(b[:len(b)-4])
	binary.LittleEndian.PutUint32(b[len(b)-4:], sum)
	r.Trace = ref
}

// ReadRaw reads and verifies the next frame without slicing out the
// payload: same validation as ReadFrame (magic, version, length bound,
// CRC), but the caller gets the whole encoded frame for pass-through.
// The returned Raw aliases the reader's scratch (see Raw).
func (r *Reader) ReadRaw() (Raw, error) {
	typ, trace, full, _, err := r.readRaw()
	if err != nil {
		return Raw{}, err
	}
	return Raw{Type: typ, Trace: trace, Bytes: full}, nil
}

// FrameBuffered reports whether a complete frame is already sitting in
// the reader's buffer, so the next ReadFrame/ReadRaw cannot block. The
// write-coalescing loops use it to drain a burst into one flush without
// stalling on a quiet wire. Conservative: an unparseable length prefix
// counts as buffered so the caller reads (and surfaces) the error now.
func (r *Reader) FrameBuffered() bool {
	n := r.br.Buffered()
	if n < headerLen+1 {
		return false
	}
	peek := headerLen + binary.MaxVarintLen64
	if peek > n {
		peek = n
	}
	b, err := r.br.Peek(peek)
	if err != nil {
		return false
	}
	ln, vlen := binary.Uvarint(b[headerLen:])
	if vlen < 0 {
		return true // overflowed varint: the next read errors immediately
	}
	if vlen == 0 {
		return false // varint continues past what is buffered
	}
	if ln > MaxPayload {
		return true // hostile length: the next read errors immediately
	}
	return n >= headerLen+vlen+int(ln)+4
}

// Queue encodes f onto the writer's pending buffer without writing.
// Call Flush to put the whole batch on the wire in one Write — the
// writev-style coalescing the session writer and gateway relay use.
func (w *Writer) Queue(f Frame) {
	w.buf = AppendFrame(w.buf, f)
	w.queued++
}

// QueueRaw appends an already-encoded frame to the pending buffer
// (copying it, so the Raw's scratch may be reused immediately).
func (w *Writer) QueueRaw(r Raw) {
	w.buf = append(w.buf, r.Bytes...)
	w.queued++
}

// Queued returns the number of frames queued since the last Flush.
func (w *Writer) Queued() int { return w.queued }

// Flush writes every queued frame in one Write. A no-op with nothing
// queued. On error the batch is discarded (the stream is torn anyway)
// and the frame counter only advances for successful flushes.
func (w *Writer) Flush() error {
	if w.queued == 0 {
		w.buf = w.buf[:0]
		return nil
	}
	n, err := w.w.Write(w.buf)
	w.bytes += uint64(n)
	w.buf = w.buf[:0]
	q := w.queued
	w.queued = 0
	if err != nil {
		return err
	}
	w.frames += uint64(q)
	return nil
}

// WriteRaw writes one already-encoded frame immediately (QueueRaw +
// Flush).
func (w *Writer) WriteRaw(r Raw) error {
	w.QueueRaw(r)
	return w.Flush()
}
