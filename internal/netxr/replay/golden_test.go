package replay_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"illixr/internal/mathx"
	"illixr/internal/netxr/binlog"
	"illixr/internal/netxr/fleet"
	"illixr/internal/netxr/replay"
	"illixr/internal/netxr/session"
	"illixr/internal/netxr/wire"
	"illixr/internal/sensors"
	"illixr/internal/telemetry"
)

// goldenDir is where the regression fingerprints live (ISSUE: goldens
// are checked in under internal/netxr/binlog/testdata).
var goldenDir = filepath.Join("..", "binlog", "testdata")

// poseEcho answers every IMU frame with one latest-wins pose so the
// downlink path through the relay carries traffic.
type poseEcho struct{}

func (poseEcho) SessionStart(*session.Session) error { return nil }
func (poseEcho) SessionEnd(*session.Session, error)  {}
func (poseEcho) SessionFrame(s *session.Session, f wire.Frame) error {
	if f.Type == wire.TypeIMU {
		imu, err := wire.DecodeIMU(f.Payload)
		if err != nil {
			return err
		}
		return s.Send(wire.Frame{Type: wire.TypePose,
			Payload: wire.AppendPose(nil, wire.Pose{T: imu.T})}, session.LatestWins)
	}
	return nil
}

// goldenFleet is a 2-replica gateway fleet assembled from exported
// API only (the in-package fleet test helper is not visible here).
type goldenFleet struct {
	coord *fleet.Coordinator
	gw    *fleet.Gateway
	srvs  []*session.Server

	mu   sync.Mutex
	down map[int]bool
}

func newGoldenFleet(t *testing.T, n, capacity int, record *binlog.Writer) *goldenFleet {
	t.Helper()
	gf := &goldenFleet{down: map[int]bool{}}
	gf.coord = fleet.NewCoordinator(fleet.Config{ReplicaCapacity: capacity, TokenSeed: 1,
		RetryAfter: 50 * time.Millisecond, ResumeBurst: 64, ResumeWindowSec: 1})
	for i := 0; i < n; i++ {
		srv := session.NewServer(session.Config{IdleTimeout: -1}, poseEcho{})
		gf.srvs = append(gf.srvs, srv)
		gf.coord.AddReplica(i, nil)
	}
	gf.gw = &fleet.Gateway{Coord: gf.coord, Dial: gf.dial, Record: record}
	t.Cleanup(func() {
		_ = gf.gw.Shutdown(context.Background())
		for _, s := range gf.srvs {
			_ = s.Shutdown(context.Background())
		}
	})
	return gf
}

func (gf *goldenFleet) dial(id int) (net.Conn, error) {
	gf.mu.Lock()
	dead := gf.down[id]
	gf.mu.Unlock()
	if dead {
		return nil, fmt.Errorf("replica %d: connection refused", id)
	}
	c, s := net.Pipe()
	if gf.srvs[id].HandleConn(s) == nil {
		_ = c.Close()
		return nil, fmt.Errorf("replica %d: connection refused", id)
	}
	return c, nil
}

func (gf *goldenFleet) kill(id int) {
	gf.mu.Lock()
	gf.down[id] = true
	gf.mu.Unlock()
	gf.srvs[id].Abort(nil)
	gf.coord.KillReplica(id)
}

// recordedClient is a wire-level client whose traffic is captured into
// its own binlog.Writer — the client side of the tap contract: one
// writer per client, spanning resumes (like bridge.Redialer.Capture).
type recordedClient struct {
	conn net.Conn
	r    *wire.Reader
	w    *wire.Writer
	wel  wire.Welcome
	cap  *binlog.Writer
}

func (gf *goldenFleet) connect(t *testing.T, hello wire.Hello, cap *binlog.Writer) *recordedClient {
	t.Helper()
	c, g := net.Pipe()
	gf.gw.HandleConn(g)
	r, w := wire.NewReader(c), wire.NewWriter(c)
	hello.Proto = wire.Version
	hf := wire.Frame{Type: wire.TypeHello, Payload: wire.AppendHello(nil, hello)}
	if err := w.WriteFrame(hf); err != nil {
		t.Fatalf("hello: %v", err)
	}
	_ = cap.Record(binlog.DirUp, hf)
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatalf("awaiting welcome: %v", err)
	}
	_ = cap.Record(binlog.DirDown, f)
	if f.Type == wire.TypeBye {
		b, _ := wire.DecodeBye(f.Payload)
		t.Fatalf("refused: %+v", b)
	}
	wel, err := wire.DecodeWelcome(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return &recordedClient{conn: c, r: r, w: w, wel: wel, cap: cap}
}

// sendIMU writes one deterministic IMU sample and reads the pose echo,
// recording both directions.
func (rc *recordedClient) sendIMU(t *testing.T, i int) {
	t.Helper()
	s := sensors.IMUSample{T: float64(i+1) * 0.002,
		Gyro:  mathx.Vec3{X: 0.01 * float64(i%5), Y: -0.02, Z: 0.005},
		Accel: mathx.Vec3{X: 0.1, Y: 0.2 * float64(i%3), Z: 9.81}}
	f := wire.Frame{Type: wire.TypeIMU, Payload: wire.AppendIMU(nil, s)}
	if err := rc.w.WriteFrame(f); err != nil {
		t.Fatalf("imu %d: %v", i, err)
	}
	_ = rc.cap.Record(binlog.DirUp, f)
	pf, err := rc.r.ReadFrame()
	if err != nil || pf.Type != wire.TypePose {
		t.Fatalf("pose echo %d: %v err %v", i, pf.Type, err)
	}
	_ = rc.cap.Record(binlog.DirDown, pf)
}

func (rc *recordedClient) sendCamera(t *testing.T, i int) {
	t.Helper()
	cf := sensors.CameraFrame{Seq: i, T: float64(i+1) * 0.066,
		Features: []sensors.FeatureObs{{}, {}}}
	f := wire.Frame{Type: wire.TypeCamera, Payload: wire.AppendCamera(nil, cf)}
	if err := rc.w.WriteFrame(f); err != nil {
		t.Fatalf("camera %d: %v", i, err)
	}
	_ = rc.cap.Record(binlog.DirUp, f)
}

func (rc *recordedClient) sendQoE(t *testing.T, i int) {
	t.Helper()
	q := wire.QoE{Session: rc.wel.Session, MTP: telemetry.MTPSample{
		T: float64(i+1) * 0.0111, IMUAge: 0.8, Reproj: 1.5, Swap: 2.1}}
	f := wire.Frame{Type: wire.TypeQoE, Payload: wire.AppendQoE(nil, q)}
	if err := rc.w.WriteFrame(f); err != nil {
		t.Fatalf("qoe %d: %v", i, err)
	}
	_ = rc.cap.Record(binlog.DirUp, f)
}

// TestGoldenRecordReplay is the end-to-end regression gate: a seeded
// 2-session run through a live gateway fleet — including a
// replica-crash resume — is captured client-side, replayed at 1× via
// replay.Compute, and the fingerprints must be bit-identical to the
// checked-in goldens. Regenerate with ILLIXR_UPDATE_GOLDEN=1 after an
// intentional wire/integrator change.
func TestGoldenRecordReplay(t *testing.T) {
	var gwBuf bytes.Buffer
	gwCap, err := binlog.NewWriter(&gwBuf, binlog.Meta{Label: "gateway"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gf := newGoldenFleet(t, 2, 8, gwCap)

	var bufA, bufB bytes.Buffer
	capA, err := binlog.NewWriter(&bufA, binlog.Meta{App: "sponza", Seed: 42, IMURateHz: 500, CamRateHz: 15, Label: "client-a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	capB, err := binlog.NewWriter(&bufB, binlog.Meta{App: "materials", Seed: 43, IMURateHz: 500, CamRateHz: 15, Label: "client-b"}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// --- session A: plain run, no crash -------------------------------
	a := gf.connect(t, wire.Hello{App: "sponza", Seed: 42, IMURateHz: 500, CamRateHz: 15}, capA)
	if a.wel.PoseEpoch != 1 || a.wel.Resumed {
		t.Fatalf("fresh welcome A = %+v", a.wel)
	}
	for i := 0; i < 24; i++ {
		a.sendIMU(t, i)
		if i%8 == 7 {
			a.sendCamera(t, i/8)
			a.sendQoE(t, i/8)
		}
	}
	_ = a.conn.Close()

	// --- session B: crash the hosting replica mid-run, resume ---------
	b := gf.connect(t, wire.Hello{App: "materials", Seed: 43, IMURateHz: 500, CamRateHz: 15}, capB)
	for i := 0; i < 8; i++ {
		b.sendIMU(t, i)
	}
	hostB := -1
	for id := range gf.srvs {
		if gf.coord.Sessions(id) == 1 {
			hostB = id
		}
	}
	if hostB == -1 {
		t.Fatal("session B not placed")
	}
	gf.kill(hostB)
	for { // stream severs without a Bye
		if _, err := b.r.ReadFrame(); err != nil {
			break
		}
	}
	_ = b.conn.Close()

	b2 := gf.connect(t, wire.Hello{App: "materials", Seed: 43, IMURateHz: 500, CamRateHz: 15,
		ResumeToken: b.wel.ResumeToken, LastSeq: 8}, capB)
	if !b2.wel.Resumed || b2.wel.PoseEpoch != 2 {
		t.Fatalf("resume welcome B = %+v", b2.wel)
	}
	for i := 8; i < 16; i++ {
		b2.sendIMU(t, i)
	}
	b2.sendQoE(t, 0)
	b2.sendQoE(t, 1)
	_ = b2.conn.Close()

	if err := capA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := capB.Close(); err != nil {
		t.Fatal(err)
	}

	// --- 1× replay: fingerprints vs goldens ---------------------------
	checkGolden(t, "golden_session_a.json", bufA.Bytes())
	fpB := checkGolden(t, "golden_session_b.json", bufB.Bytes())
	if len(fpB.PoseEpochs) != 2 || fpB.PoseEpochs[0] != 1 || fpB.PoseEpochs[1] != 2 {
		t.Fatalf("session B pose-epoch lineage = %v, want [1 2]", fpB.PoseEpochs)
	}

	// --- the gateway-side tap captured the same run -------------------
	_ = gf.gw.Shutdown(context.Background())
	if err := gwCap.Close(); err != nil {
		t.Fatal(err)
	}
	gl, err := binlog.DecodeLog(gwBuf.Bytes(), nil)
	if err != nil {
		t.Fatalf("gateway capture: %v", err)
	}
	counts := gl.CountByType()
	if counts[wire.TypeHello] != 3 || counts[wire.TypeWelcome] != 3 {
		t.Fatalf("gateway saw %d hellos / %d welcomes, want 3/3 (A, B, B-resume)",
			counts[wire.TypeHello], counts[wire.TypeWelcome])
	}
	if counts[wire.TypeIMU] != 40 {
		t.Fatalf("gateway captured %d uplink IMU, want 40", counts[wire.TypeIMU])
	}
}

// checkGolden computes the 1× replay fingerprint of a capture and
// compares it bit-exactly against the checked-in golden.
func checkGolden(t *testing.T, name string, raw []byte) replay.Fingerprint {
	t.Helper()
	l, err := binlog.DecodeLog(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Torn != 0 {
		t.Fatalf("%s: torn records in clean capture", name)
	}
	fp, err := replay.Compute(l)
	if err != nil {
		t.Fatal(err)
	}
	// replay is virtual-time: computing twice is bit-identical
	fp2, err := replay.Compute(l)
	if err != nil || !fp.Equal(fp2) {
		t.Fatalf("%s: replay not deterministic: %s", name, fp.Diff(fp2))
	}
	path := filepath.Join(goldenDir, name)
	if os.Getenv("ILLIXR_UPDATE_GOLDEN") == "1" {
		out, _ := json.MarshalIndent(fp, "", "  ")
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return fp
	}
	gb, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden missing (regenerate with ILLIXR_UPDATE_GOLDEN=1): %v", err)
	}
	var want replay.Fingerprint
	if err := json.Unmarshal(gb, &want); err != nil {
		t.Fatal(err)
	}
	if !fp.Equal(want) {
		t.Fatalf("%s: FINGERPRINT DRIFT: %s", name, fp.Diff(want))
	}
	return fp
}
