package replay_test

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"illixr/internal/mathx"
	"illixr/internal/netxr/binlog"
	"illixr/internal/netxr/replay"
	"illixr/internal/netxr/wire"
	"illixr/internal/sensors"
	"illixr/internal/telemetry"
)

// makeRecording synthesizes a realistic single-session capture: Hello,
// Welcome, a paced IMU stream with periodic QoE, downlink poses, Bye.
func makeRecording(t *testing.T, imuN int) *binlog.Log {
	t.Helper()
	var buf bytes.Buffer
	w, err := binlog.NewWriter(&buf, binlog.Meta{Session: 1, App: "rec",
		Seed: 7, IMURateHz: 500, CamRateHz: 15, Label: "fanout-src"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := func(dir binlog.Dir, wall float64, f wire.Frame) {
		if err := w.RecordAt(dir, wall, f); err != nil {
			t.Fatal(err)
		}
	}
	rec(binlog.DirUp, 0, wire.Frame{Type: wire.TypeHello, Payload: wire.AppendHello(nil,
		wire.Hello{Proto: wire.Version, App: "rec", Seed: 7, IMURateHz: 500, CamRateHz: 15})})
	rec(binlog.DirDown, 0.001, wire.Frame{Type: wire.TypeWelcome, Payload: wire.AppendWelcome(nil,
		wire.Welcome{Proto: wire.Version, Session: 1, ResumeToken: 99, PoseEpoch: 1})})
	for i := 0; i < imuN; i++ {
		wall := 0.002 * float64(i+1)
		rec(binlog.DirUp, wall, wire.Frame{Type: wire.TypeIMU, Payload: wire.AppendIMU(nil,
			sensors.IMUSample{T: wall, Gyro: mathx.Vec3{X: 0.1}, Accel: mathx.Vec3{Z: 9.81}})})
		rec(binlog.DirDown, wall+0.0005, wire.Frame{Type: wire.TypePose,
			Payload: wire.AppendPose(nil, wire.Pose{T: wall})})
		if i%10 == 9 {
			rec(binlog.DirUp, wall+0.0002, wire.Frame{Type: wire.TypeQoE, Payload: wire.AppendQoE(nil,
				wire.QoE{Session: 1, MTP: telemetry.MTPSample{T: wall, IMUAge: 1, Reproj: 2, Swap: 3}})})
		}
	}
	rec(binlog.DirUp, 0.002*float64(imuN+1), wire.Frame{Type: wire.TypeBye,
		Payload: wire.AppendBye(nil, wire.Bye{Reason: "done"})})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := binlog.DecodeLog(buf.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestFanOutSoakEightClients is the N× load-generation soak: one
// recording fanned out as 8 concurrent fresh-identity clients through
// the gateway into a live 2-replica fleet. Run under -race in CI; the
// cell must admit all 8 with zero lost uplink frames and poses flowing
// back to every client.
func TestFanOutSoakEightClients(t *testing.T) {
	const clients = 8
	const imuN = 40
	gf := newGoldenFleet(t, 2, clients, nil)
	l := makeRecording(t, imuN)

	results := replay.FanOut(clients, func(int) (net.Conn, error) {
		c, g := net.Pipe()
		gf.gw.HandleConn(g)
		return c, nil
	}, l, replay.Options{Timeout: 10 * time.Second})

	admitted, lost, poses, firstErr := replay.Tally(results)
	if firstErr != nil {
		t.Fatalf("first error: %v", firstErr)
	}
	if admitted != clients || lost != 0 {
		t.Fatalf("admitted %d/%d, lost %d; want all admitted, 0 lost", admitted, clients, lost)
	}
	if poses == 0 {
		t.Fatal("no poses flowed back during the soak")
	}
	// recorded uplink = hello + 40 IMU + 4 QoE + bye; the replayer skips
	// the recorded hello/bye and synthesizes its own pair
	const wantSent = 1 + imuN + imuN/10 + 1
	for i, r := range results {
		if r.Session == 0 {
			t.Fatalf("client %d: no session id", i)
		}
		if r.Resumed || r.PoseEpoch != 1 {
			t.Fatalf("client %d: fan-out identity resumed: %+v", i, r)
		}
		if r.Sent != wantSent || r.Skipped != 2 {
			t.Fatalf("client %d: sent %d skipped %d, want %d/2", i, r.Sent, r.Skipped, wantSent)
		}
		if r.Poses == 0 {
			t.Fatalf("client %d: no poses received", i)
		}
	}
}

// TestFanOutAdmissionRefusal composes replay with PR 6 admission: a
// 1-replica capacity-2 cell fanned to 4 clients admits exactly 2 and
// refuses the rest with a typed, tallied error — never a hang.
func TestFanOutAdmissionRefusal(t *testing.T) {
	gf := newGoldenFleet(t, 1, 2, nil)
	l := makeRecording(t, 10)

	results := replay.FanOut(4, func(int) (net.Conn, error) {
		c, g := net.Pipe()
		gf.gw.HandleConn(g)
		return c, nil
	}, l, replay.Options{Timeout: 5 * time.Second})

	admitted, lost, _, firstErr := replay.Tally(results)
	if admitted != 2 {
		t.Fatalf("admitted %d, want 2", admitted)
	}
	if lost != 0 {
		t.Fatalf("refused clients lost %d frames; refusal is pre-stream", lost)
	}
	if !errors.Is(firstErr, replay.ErrRefused) {
		t.Fatalf("firstErr = %v, want ErrRefused", firstErr)
	}
	for i, r := range results {
		if r.Err != nil && !errors.Is(r.Err, replay.ErrRefused) {
			t.Fatalf("client %d failed with %v, want refusal", i, r.Err)
		}
	}
}

// TestReplayPacingVirtualTime checks 1× pacing: with Speed 1 the
// replayer asks to sleep until each frame's recorded offset, so the
// largest requested target approaches the recording's uplink span.
func TestReplayPacingVirtualTime(t *testing.T) {
	gf := newGoldenFleet(t, 1, 4, nil)
	const imuN = 20
	l := makeRecording(t, imuN)
	span := 0.002 * float64(imuN) // first IMU at 2ms, last at 40ms

	var maxSleep time.Duration
	c, g := net.Pipe()
	gf.gw.HandleConn(g)
	res := replay.Replay(c, l, replay.Options{
		Speed:   1,
		Timeout: 5 * time.Second,
		Sleep: func(d time.Duration) {
			if d > maxSleep {
				maxSleep = d
			}
		},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Lost != 0 {
		t.Fatalf("lost %d frames", res.Lost)
	}
	if got := maxSleep.Seconds(); got < span*0.5 {
		t.Fatalf("max pacing target %.4fs, want >= %.4fs (half the recorded span)", got, span*0.5)
	}
}
