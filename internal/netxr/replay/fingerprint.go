// Package replay turns a binlog capture (internal/netxr/binlog) back
// into traffic. It has two modes:
//
//   - 1× regression replay: Compute re-drives the recorded uplink
//     through the deterministic perception core (the RK4 integrator)
//     in virtual time and folds the results into a Fingerprint — a set
//     of SHA-256 digests over the capture's deterministic content.
//     Recording the same seeded scenario twice, or replaying a
//     recording through a re-split topology, must reproduce the
//     fingerprint bit-exactly; goldens are checked in and gated.
//
//   - N× fan-out: Replay/FanOut stamp fresh session identities onto
//     one recording and drive it through a live gateway/server fleet
//     as synthetic load — one captured session becomes an arbitrary
//     number of replayed clients (ROADMAP item 2).
//
// What a fingerprint covers — and deliberately does not: uplink IMU
// and camera payloads are hashed per type in capture order (the bridge
// uplinks IMU and camera from separate goroutines, so their relative
// interleave in the file is timing, not content); QoE payloads are
// re-encoded with the session id zeroed (replayed sessions get fresh
// identities); poses are NOT taken from the downlink — latest-wins
// delivery drops a timing-dependent subset — but recomputed by feeding
// the recorded IMU stream through integrator.New, which is pure
// deterministic float math. Pose epochs from downlink Welcomes are
// kept: they are the resume lineage the fleet guarantees.
package replay

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"illixr/internal/integrator"
	"illixr/internal/mathx"
	"illixr/internal/netxr/binlog"
	"illixr/internal/netxr/wire"
)

// Fingerprint is the bit-exact identity of a capture's deterministic
// content. Two captures of the same seeded scenario — or a capture and
// its 1× replay — must produce equal fingerprints; any drift means the
// pipeline's deterministic core changed behaviour.
type Fingerprint struct {
	// UpIMU / UpCamera / UpQoE count the uplink frames per type.
	UpIMU    uint64 `json:"up_imu"`
	UpCamera uint64 `json:"up_camera"`
	UpQoE    uint64 `json:"up_qoe"`
	// PoseEpochs lists the PoseEpoch of every downlink Welcome in
	// order: a fresh session contributes its initial epoch, each resume
	// the incremented one — the fleet's survivability lineage.
	PoseEpochs []uint64 `json:"pose_epochs"`
	// IMUSHA / CamSHA digest the raw uplink payloads per type in
	// capture order.
	IMUSHA string `json:"imu_sha256"`
	CamSHA string `json:"cam_sha256"`
	// QoESHA digests the uplink QoE payloads re-encoded with Session=0
	// (session identity is placement-dependent, QoE content is not).
	QoESHA string `json:"qoe_sha256"`
	// PoseSHA digests the pose chain produced by re-driving the
	// recorded IMU stream through the RK4 integrator at 1× virtual
	// time — the replayed perception output.
	PoseSHA string `json:"pose_sha256"`
}

// Equal reports bit-exact fingerprint equality.
func (f Fingerprint) Equal(g Fingerprint) bool {
	if f.UpIMU != g.UpIMU || f.UpCamera != g.UpCamera || f.UpQoE != g.UpQoE ||
		f.IMUSHA != g.IMUSHA || f.CamSHA != g.CamSHA ||
		f.QoESHA != g.QoESHA || f.PoseSHA != g.PoseSHA ||
		len(f.PoseEpochs) != len(g.PoseEpochs) {
		return false
	}
	for i := range f.PoseEpochs {
		if f.PoseEpochs[i] != g.PoseEpochs[i] {
			return false
		}
	}
	return true
}

// Diff describes the first mismatch between two fingerprints ("" when
// equal) — the failure message regression gates print.
func (f Fingerprint) Diff(g Fingerprint) string {
	switch {
	case f.UpIMU != g.UpIMU:
		return fmt.Sprintf("up_imu: %d != %d", f.UpIMU, g.UpIMU)
	case f.UpCamera != g.UpCamera:
		return fmt.Sprintf("up_camera: %d != %d", f.UpCamera, g.UpCamera)
	case f.UpQoE != g.UpQoE:
		return fmt.Sprintf("up_qoe: %d != %d", f.UpQoE, g.UpQoE)
	case f.IMUSHA != g.IMUSHA:
		return fmt.Sprintf("imu_sha256: %s != %s", f.IMUSHA, g.IMUSHA)
	case f.CamSHA != g.CamSHA:
		return fmt.Sprintf("cam_sha256: %s != %s", f.CamSHA, g.CamSHA)
	case f.QoESHA != g.QoESHA:
		return fmt.Sprintf("qoe_sha256: %s != %s", f.QoESHA, g.QoESHA)
	case f.PoseSHA != g.PoseSHA:
		return fmt.Sprintf("pose_sha256: %s != %s", f.PoseSHA, g.PoseSHA)
	case len(f.PoseEpochs) != len(g.PoseEpochs):
		return fmt.Sprintf("pose_epochs: %v != %v", f.PoseEpochs, g.PoseEpochs)
	}
	for i := range f.PoseEpochs {
		if f.PoseEpochs[i] != g.PoseEpochs[i] {
			return fmt.Sprintf("pose_epochs[%d]: %d != %d", i, f.PoseEpochs[i], g.PoseEpochs[i])
		}
	}
	return ""
}

// hashPose folds one replayed pose into h as canonical little-endian
// float64 bit patterns.
func hashPose(h hash.Hash, t float64, p mathx.Pose) {
	var buf [8 * 8]byte
	vals := [8]float64{t, p.Pos.X, p.Pos.Y, p.Pos.Z, p.Rot.W, p.Rot.X, p.Rot.Y, p.Rot.Z}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	h.Write(buf[:])
}

// Compute runs the 1× virtual-time replay of l and returns its
// fingerprint. The recorded uplink IMU stream is fed through a fresh
// RK4 integrator in record order — the same deterministic math the
// serve pipeline runs — so the pose digest is what any replica,
// anywhere, must produce from this capture.
func Compute(l *binlog.Log) (Fingerprint, error) {
	var fp Fingerprint
	imuH, camH, qoeH, poseH := sha256.New(), sha256.New(), sha256.New(), sha256.New()
	integ := integrator.New(integrator.State{})
	var qoeBuf []byte
	for _, r := range l.Records {
		if r.Dir == binlog.DirDown {
			if r.Frame.Type == wire.TypeWelcome {
				w, err := wire.DecodeWelcome(r.Frame.Payload)
				if err != nil {
					return fp, fmt.Errorf("replay: record %d: welcome: %w", r.Seq, err)
				}
				fp.PoseEpochs = append(fp.PoseEpochs, w.PoseEpoch)
			}
			continue
		}
		switch r.Frame.Type {
		case wire.TypeIMU:
			s, err := wire.DecodeIMU(r.Frame.Payload)
			if err != nil {
				return fp, fmt.Errorf("replay: record %d: imu: %w", r.Seq, err)
			}
			fp.UpIMU++
			imuH.Write(r.Frame.Payload)
			integ.Feed(s)
			hashPose(poseH, s.T, integ.FastPose())
		case wire.TypeCamera:
			fp.UpCamera++
			camH.Write(r.Frame.Payload)
		case wire.TypeQoE:
			q, err := wire.DecodeQoE(r.Frame.Payload)
			if err != nil {
				return fp, fmt.Errorf("replay: record %d: qoe: %w", r.Seq, err)
			}
			q.Session = 0
			qoeBuf = wire.AppendQoE(qoeBuf[:0], q)
			fp.UpQoE++
			qoeH.Write(qoeBuf)
		}
	}
	fp.IMUSHA = hex.EncodeToString(imuH.Sum(nil))
	fp.CamSHA = hex.EncodeToString(camH.Sum(nil))
	fp.QoESHA = hex.EncodeToString(qoeH.Sum(nil))
	fp.PoseSHA = hex.EncodeToString(poseH.Sum(nil))
	if fp.PoseEpochs == nil {
		fp.PoseEpochs = []uint64{}
	}
	return fp, nil
}
