package replay

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"illixr/internal/netxr/binlog"
	"illixr/internal/netxr/wire"
)

// Options tunes a replayed client.
type Options struct {
	// Speed scales pacing against the recorded wall stamps: 1 replays
	// in recorded time, 2 at double speed, 0 streams flat out.
	Speed float64
	// App overrides the recorded Hello's application label ("" keeps it).
	App string
	// Seed offsets the recorded Hello's dataset seed (fan-out clients
	// can present distinct seeds without re-recording); 0 keeps it.
	Seed int64
	// Timeout bounds the handshake and the post-Bye drain (0 = 5s).
	Timeout time.Duration
	// Sleep is the pacing primitive, injectable for tests; nil =
	// time.Sleep.
	Sleep func(time.Duration)
}

func (o Options) withDefaults() Options {
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Result is one replayed client's outcome. Lost must be zero for a
// healthy fan-out cell: every recorded uplink frame either reached the
// wire or was deliberately skipped (handshake/teardown frames the
// replayer synthesizes itself).
type Result struct {
	// Session / PoseEpoch / Resumed echo the Welcome this replayed
	// client was admitted with.
	Session   uint64
	PoseEpoch uint64
	Resumed   bool
	// Sent counts uplink frames written (synthesized Hello and Bye
	// included); Received counts downlink frames read, Poses the pose
	// subset.
	Sent     uint64
	Received uint64
	Poses    uint64
	// Skipped counts recorded uplink frames not replayed: the recorded
	// Hello(s) and Bye(s), replaced by this client's own identity.
	Skipped uint64
	// Lost counts recorded uplink frames that failed to reach the wire.
	Lost uint64
	// Err is the first transport/handshake failure (nil on success).
	Err error `json:"-"`
}

// ErrRefused is wrapped into Result.Err when the fleet answers the
// replayed Hello with a Bye.
var ErrRefused = errors.New("replay: admission refused")

// helloOf finds the first recorded uplink Hello — the identity template
// every replayed client restamps.
func helloOf(l *binlog.Log) (wire.Hello, error) {
	for _, r := range l.Records {
		if r.Dir == binlog.DirUp && r.Frame.Type == wire.TypeHello {
			return wire.DecodeHello(r.Frame.Payload)
		}
	}
	return wire.Hello{}, errors.New("replay: no uplink Hello in recording")
}

// Replay drives one fresh-identity client from the recording over conn:
// it handshakes with a resume-stripped restamped Hello, streams every
// recorded uplink frame (QoE session ids rewritten to the new session),
// paced against the recorded wall stamps, then says Bye and drains the
// downlink. The caller owns conn's lifetime on error paths; Replay
// closes it on all paths before returning.
func Replay(conn net.Conn, l *binlog.Log, opt Options) Result {
	opt = opt.withDefaults()
	var res Result
	defer func() { _ = conn.Close() }()

	hello, err := helloOf(l)
	if err != nil {
		res.Err = err
		return res
	}
	// fresh identity: never resume the recorded session, optionally
	// restamp the label and seed
	hello.ResumeToken, hello.LastSeq = 0, 0
	if opt.App != "" {
		hello.App = opt.App
	}
	hello.Seed += opt.Seed

	w, r := wire.NewWriter(conn), wire.NewReader(conn)
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeHello,
		Payload: wire.AppendHello(nil, hello)}); err != nil {
		res.Err = fmt.Errorf("replay: hello: %w", err)
		return res
	}
	res.Sent++
	_ = conn.SetReadDeadline(time.Now().Add(opt.Timeout))
	f, err := r.ReadFrame()
	if err != nil {
		res.Err = fmt.Errorf("replay: awaiting welcome: %w", err)
		return res
	}
	_ = conn.SetReadDeadline(time.Time{})
	switch f.Type {
	case wire.TypeWelcome:
		wel, derr := wire.DecodeWelcome(f.Payload)
		if derr != nil {
			res.Err = fmt.Errorf("replay: welcome: %w", derr)
			return res
		}
		res.Session, res.PoseEpoch, res.Resumed = wel.Session, wel.PoseEpoch, wel.Resumed
		res.Received++
	case wire.TypeBye:
		b, _ := wire.DecodeBye(f.Payload)
		res.Err = fmt.Errorf("%w: %s", ErrRefused, b.Reason)
		return res
	default:
		res.Err = fmt.Errorf("replay: unexpected %v before welcome", f.Type)
		return res
	}

	// downlink drain: count what comes back until Bye/close.
	var downWG sync.WaitGroup
	var downMu sync.Mutex
	downWG.Add(1)
	go func() {
		defer downWG.Done()
		for {
			df, err := r.ReadFrame()
			if err != nil {
				return
			}
			downMu.Lock()
			res.Received++
			if df.Type == wire.TypePose {
				res.Poses++
			}
			downMu.Unlock()
			if df.Type == wire.TypeBye {
				return
			}
		}
	}()

	// uplink: stream the recording. Wall stamps are relative to the
	// first replayed frame so captures that start mid-run pace correctly.
	var qoeBuf []byte
	start := time.Now()
	base, haveBase := 0.0, false
	err = nil
	for _, rec := range l.Records {
		if rec.Dir != binlog.DirUp {
			continue
		}
		switch rec.Frame.Type {
		case wire.TypeHello, wire.TypeBye:
			res.Skipped++ // identity and teardown are synthesized, not replayed
			continue
		}
		if err != nil {
			res.Lost++ // transport already failed: account the remainder
			continue
		}
		if !haveBase {
			base, haveBase = rec.Wall, true
		}
		if opt.Speed > 0 {
			target := time.Duration((rec.Wall - base) / opt.Speed * float64(time.Second))
			if d := target - time.Since(start); d > 0 {
				opt.Sleep(d)
			}
		}
		out := rec.Frame
		if out.Type == wire.TypeQoE {
			// QoE carries the recorded session id; restamp it with this
			// replayed client's identity so per-session attribution holds.
			q, derr := wire.DecodeQoE(out.Payload)
			if derr == nil {
				q.Session = res.Session
				qoeBuf = wire.AppendQoE(qoeBuf[:0], q)
				out.Payload = qoeBuf
			}
		}
		if werr := w.WriteFrame(out); werr != nil {
			err = fmt.Errorf("replay: uplink: %w", werr)
			res.Lost++
			continue
		}
		res.Sent++
	}
	if err == nil {
		if werr := w.WriteFrame(wire.Frame{Type: wire.TypeBye,
			Payload: wire.AppendBye(nil, wire.Bye{Reason: "replay done"})}); werr == nil {
			res.Sent++
		}
	}
	// bounded drain: the server flushes queued downlink and answers the
	// Bye; a dead peer must not hang the replayer.
	_ = conn.SetReadDeadline(time.Now().Add(opt.Timeout))
	downWG.Wait()
	res.Err = err
	return res
}

// FanOut replays the recording as n concurrent fresh-identity clients
// (each dialed via dial, each seed-offset by its index) and collects
// the per-client results — one captured session hammering a fleet as
// n synthetic ones.
func FanOut(n int, dial func(i int) (net.Conn, error), l *binlog.Log, opt Options) []Result {
	results := make([]Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := dial(i)
			if err != nil {
				results[i].Err = fmt.Errorf("replay: dial client %d: %w", i, err)
				return
			}
			o := opt
			o.Seed += int64(i)
			results[i] = Replay(conn, l, o)
		}(i)
	}
	wg.Wait()
	return results
}

// Tally summarizes fan-out results: admitted sessions, total frames
// lost, total poses received, and the first error (nil when clean).
func Tally(results []Result) (admitted int, lost, poses uint64, firstErr error) {
	for i := range results {
		r := &results[i]
		if r.Err == nil {
			admitted++
		} else if firstErr == nil {
			firstErr = r.Err
		}
		lost += r.Lost
		poses += r.Poses
	}
	return admitted, lost, poses, firstErr
}
