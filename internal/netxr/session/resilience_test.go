package session

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
)

// TestDrainIdempotent is the regression test for the double-drain bug
// class: a second Drain (or a Close racing the drain deadline) must not
// panic and must not re-arm a second Bye.
func TestDrainIdempotent(t *testing.T) {
	h := newCollect()
	srv := NewServer(Config{}, h)
	defer srv.Shutdown(context.Background())

	client, server := net.Pipe()
	defer client.Close()
	sess := srv.HandleConn(server)
	r, _, _ := clientHandshake(t, client)

	sess.Drain("first")
	sess.Drain("second")          // idempotent: first reason wins
	sess.DrainRetry("third", 999) // and no late retry hint either

	byes := 0
	var got wire.Bye
	for {
		f, err := r.ReadFrame()
		if err != nil {
			break
		}
		if f.Type == wire.TypeBye {
			byes++
			got, _ = wire.DecodeBye(f.Payload)
		}
	}
	if byes != 1 {
		t.Fatalf("byes = %d, want exactly 1", byes)
	}
	if got.Reason != "first" || got.RetryAfterMs != 0 {
		t.Fatalf("bye = %+v, want the first drain's reason and no hint", got)
	}

	// after the session is fully down, drain and close again: both must
	// be no-ops, not panics or double-sends
	waitFor(t, func() bool { return srv.Len() == 0 })
	sess.Drain("late")
	sess.Close(errors.New("late close"))
	sess.Drain("later still")
}

// TestCloseThenDrainIdempotent covers the other ordering: a session
// force-closed first (the drain-deadline path) ignores later drains.
func TestCloseThenDrainIdempotent(t *testing.T) {
	h := newCollect()
	srv := NewServer(Config{}, h)
	defer srv.Shutdown(context.Background())

	client, server := net.Pipe()
	defer client.Close()
	sess := srv.HandleConn(server)
	clientHandshake(t, client)

	sess.Close(errors.New("deadline"))
	sess.Drain("after close") // must not panic or send anything
	sess.Close(nil)           // double close: no-op

	waitFor(t, func() bool { return srv.Len() == 0 })
	if h.endedCount() != 1 {
		t.Fatalf("SessionEnd ran %d times, want 1", h.endedCount())
	}
}

// TestBackpressureTypedError verifies satellite semantics: a full
// reliable queue returns a typed, retryable *BackpressureError — not a
// silent drop — and bumps illixr_netxr_backpressure_total.
func TestBackpressureTypedError(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := newCollect()
	srv := NewServer(Config{QueueLen: 4, Metrics: reg}, h)
	defer srv.Shutdown(context.Background())

	client, server := net.Pipe()
	defer client.Close()
	sess := srv.HandleConn(server)
	clientHandshake(t, client)

	payload := wire.AppendPing(nil, wire.Ping{})
	var last error
	for i := 0; i < 16; i++ {
		if err := sess.Send(wire.Frame{Type: wire.TypeQoE, Payload: payload}, Reliable); err != nil {
			last = err
			break
		}
	}
	if last == nil {
		t.Fatal("reliable queue never pushed back")
	}
	var bp *BackpressureError
	if !errors.As(last, &bp) {
		t.Fatalf("err = %T %v, want *BackpressureError", last, last)
	}
	if !errors.Is(last, ErrBackpressure) {
		t.Fatal("BackpressureError does not unwrap to ErrBackpressure")
	}
	if !IsRetryable(last) {
		t.Fatal("BackpressureError not retryable")
	}
	if bp.Session != sess.ID() || bp.Queued == 0 {
		t.Fatalf("context missing: %+v", bp)
	}
	ctr := reg.Counter(telemetry.MetricName("netxr", "backpressure_total"))
	if ctr.Value() == 0 {
		t.Fatal("illixr_netxr_backpressure_total not incremented")
	}
}

// TestServerFullRetryAfter: a capacity refusal is admission-control
// push-back — the Bye carries a machine-readable Retry-After hint.
func TestServerFullRetryAfter(t *testing.T) {
	h := newCollect()
	srv := NewServer(Config{MaxSessions: 1, RetryAfter: 200 * time.Millisecond}, h)
	defer srv.Shutdown(context.Background())

	c1, s1 := net.Pipe()
	defer c1.Close()
	srv.HandleConn(s1)
	clientHandshake(t, c1)

	c2, s2 := net.Pipe()
	defer c2.Close()
	srv.HandleConn(s2)
	f, err := wire.NewReader(c2).ReadFrame()
	if err != nil || f.Type != wire.TypeBye {
		t.Fatalf("refusal = %v err %v, want bye", f.Type, err)
	}
	bye, err := wire.DecodeBye(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if bye.RetryAfterMs != 200 || !bye.Retryable() {
		t.Fatalf("bye = %+v, want retryable with 200ms hint", bye)
	}
}

// admitFunc adapts a function to the Admission interface.
type admitFunc func(sessionID uint64, h wire.Hello) (wire.Welcome, error)

func (f admitFunc) Admit(id uint64, h wire.Hello) (wire.Welcome, error) { return f(id, h) }

// TestAdmissionResumeWelcome: an Admission hook's resume snapshot rides
// the Welcome, with the transport owning Proto and Session.
func TestAdmissionResumeWelcome(t *testing.T) {
	reg := telemetry.NewRegistry()
	adm := admitFunc(func(id uint64, h wire.Hello) (wire.Welcome, error) {
		if h.ResumeToken != 77 {
			t.Errorf("hello token = %d, want 77", h.ResumeToken)
		}
		return wire.Welcome{Proto: 99, Session: 99, ResumeToken: 77, Resumed: true, LastAckSeq: 640, PoseEpoch: 3}, nil
	})
	srv := NewServer(Config{Admission: adm, Metrics: reg}, newCollect())
	defer srv.Shutdown(context.Background())

	client, server := net.Pipe()
	defer client.Close()
	sess := srv.HandleConn(server)

	r, w := wire.NewReader(client), wire.NewWriter(client)
	hello := wire.AppendHello(nil, wire.Hello{Proto: wire.Version, App: "test", ResumeToken: 77, LastSeq: 512})
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeHello, Payload: hello}); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil || f.Type != wire.TypeWelcome {
		t.Fatalf("reply = %v err %v, want welcome", f.Type, err)
	}
	wel, err := wire.DecodeWelcome(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if wel.Proto != wire.Version || wel.Session != sess.ID() {
		t.Fatalf("transport fields not overwritten: %+v", wel)
	}
	if !wel.Resumed || wel.ResumeToken != 77 || wel.LastAckSeq != 640 || wel.PoseEpoch != 3 {
		t.Fatalf("resume snapshot lost: %+v", wel)
	}
	if reg.Counter(telemetry.MetricName("netxr", "sessions_resumed_total")).Value() != 1 {
		t.Fatal("resume not counted")
	}
}

// TestAdmissionRefusalRetryAfter: an *AdmissionError surfaces to the
// client as a retryable Bye carrying the hint.
func TestAdmissionRefusalRetryAfter(t *testing.T) {
	adm := admitFunc(func(id uint64, h wire.Hello) (wire.Welcome, error) {
		return wire.Welcome{}, &AdmissionError{Reason: "resume burst", RetryAfter: 300 * time.Millisecond}
	})
	srv := NewServer(Config{Admission: adm}, newCollect())
	defer srv.Shutdown(context.Background())

	client, server := net.Pipe()
	defer client.Close()
	srv.HandleConn(server)

	r, w := wire.NewReader(client), wire.NewWriter(client)
	hello := wire.AppendHello(nil, wire.Hello{Proto: wire.Version, App: "test"})
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeHello, Payload: hello}); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil || f.Type != wire.TypeBye {
		t.Fatalf("reply = %v err %v, want bye", f.Type, err)
	}
	bye, err := wire.DecodeBye(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if bye.RetryAfterMs != 300 || !bye.Retryable() {
		t.Fatalf("bye = %+v, want retryable 300ms refusal", bye)
	}
}

// TestAbortSeversSessions: Abort is the replica-crash primitive — every
// session dies with no Bye, exactly like a killed process.
func TestAbortSeversSessions(t *testing.T) {
	h := newCollect()
	srv := NewServer(Config{}, h)

	client, server := net.Pipe()
	defer client.Close()
	srv.HandleConn(server)
	r, _, _ := clientHandshake(t, client)

	srv.Abort(nil)
	if srv.Len() != 0 {
		t.Fatalf("sessions = %d after abort, want 0", srv.Len())
	}
	// the client must see a severed stream, not a graceful Bye
	for {
		f, err := r.ReadFrame()
		if err != nil {
			break
		}
		if f.Type == wire.TypeBye {
			t.Fatal("abort sent a Bye; crashes must be silent")
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, err := range h.ended {
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("end err = %v, want ErrAborted", err)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
