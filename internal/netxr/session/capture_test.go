package session

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"illixr/internal/netxr/binlog"
	"illixr/internal/netxr/wire"
	"illixr/internal/sensors"
	"illixr/internal/telemetry"
)

// TestCaptureSingleAppendPathOrdering exercises the capture-ordering
// hazard from DESIGN.md §13: the session's reader goroutine (uplink)
// and writer goroutine (downlink) both tap into one shared
// binlog.Writer, whose lock is THE single append path. Under
// concurrent reliable + latest-wins traffic the resulting log must
// have dense writer-assigned seqs, monotonic wall stamps, and
// per-direction frame order identical to wire order — no interleaving
// corruption, no lost uplink frames.
func TestCaptureSingleAppendPathOrdering(t *testing.T) {
	const uplinkN = 200

	var buf bytes.Buffer
	cap, err := binlog.NewWriter(&buf, binlog.Meta{Label: "capture-test"}, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}

	h := newCollect()
	srv := NewServer(Config{Capture: cap, QueueLen: 1024}, h)

	client, server := net.Pipe()
	defer client.Close()
	sess := srv.HandleConn(server)
	if sess == nil {
		t.Fatal("conn refused")
	}
	r, w, welcome := clientHandshake(t, client)

	// downlink pump: a test goroutine races the reader goroutine's
	// uplink captures with reliable QoE + latest-wins Pose sends
	// ready gates the uplink below on the pump's first successful send:
	// without it the net.Pipe rendezvous between this goroutine and the
	// session reader can starve the pump long enough that the whole
	// uplink finishes before a single downlink frame is queued
	stop := make(chan struct{})
	ready := make(chan struct{})
	var pumpWG sync.WaitGroup
	pumpWG.Add(1)
	go func() {
		defer pumpWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			qoe := wire.AppendQoE(nil, wire.QoE{Session: welcome.Session,
				MTP: telemetry.MTPSample{T: float64(i)}})
			err := sess.Send(wire.Frame{Type: wire.TypeQoE, Payload: qoe}, Reliable)
			if i == 0 {
				close(ready)
			}
			if err != nil {
				return // backpressure under flood: the queued tail still flushes
			}
			pose := wire.AppendPose(nil, wire.Pose{T: float64(i)})
			_ = sess.Send(wire.Frame{Type: wire.TypePose, Payload: pose}, LatestWins)
		}
	}()

	// client drains downlink so net.Pipe never stalls the writer loop
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for {
			if _, err := r.ReadFrame(); err != nil {
				return
			}
		}
	}()

	// concurrent uplink: strictly increasing IMU timestamps
	<-ready
	for i := 0; i < uplinkN; i++ {
		imu := wire.AppendIMU(nil, sensors.IMUSample{T: float64(i) * 0.002})
		if err := w.WriteFrame(wire.Frame{Type: wire.TypeIMU, Payload: imu}); err != nil {
			t.Fatalf("uplink %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.frameCount() < uplinkN && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.frameCount() < uplinkN {
		t.Fatalf("handler saw %d/%d uplink frames", h.frameCount(), uplinkN)
	}
	close(stop)
	pumpWG.Wait()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	drainWG.Wait()
	// ownership rule: the opener closes the capture only after the
	// session goroutines have quiesced (Shutdown waited on them)
	if err := cap.Close(); err != nil {
		t.Fatal(err)
	}

	l, err := binlog.DecodeLog(buf.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Torn != 0 {
		t.Fatalf("torn records in a clean shutdown: %d", l.Torn)
	}

	var upIMU, downQoE, downPose int
	prevIMU, prevQoE := -1.0, -1.0
	for i, rec := range l.Records {
		// single append path ⇒ dense seqs and monotonic wall stamps
		if rec.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d: append path not serialized", i, rec.Seq)
		}
		if i > 0 && rec.Wall < l.Records[i-1].Wall {
			t.Fatalf("wall regressed at record %d", i)
		}
		switch {
		case rec.Dir == binlog.DirUp && rec.Frame.Type == wire.TypeIMU:
			s, err := wire.DecodeIMU(rec.Frame.Payload)
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if s.T <= prevIMU {
				t.Fatalf("uplink IMU out of receipt order at record %d: %v after %v", i, s.T, prevIMU)
			}
			prevIMU = s.T
			upIMU++
		case rec.Dir == binlog.DirDown && rec.Frame.Type == wire.TypeQoE:
			q, err := wire.DecodeQoE(rec.Frame.Payload)
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if q.MTP.T <= prevQoE {
				t.Fatalf("reliable downlink out of wire order at record %d: %v after %v", i, q.MTP.T, prevQoE)
			}
			prevQoE = q.MTP.T
			downQoE++
		case rec.Dir == binlog.DirDown && rec.Frame.Type == wire.TypePose:
			downPose++ // latest-wins: only frames that reached the wire appear
		}
	}
	if upIMU != uplinkN {
		t.Fatalf("captured %d uplink IMU frames, want %d", upIMU, uplinkN)
	}
	if downQoE == 0 {
		t.Fatal("no reliable downlink captured despite concurrent pump")
	}
	t.Logf("captured %d records: %d up IMU, %d down QoE, %d down Pose", len(l.Records), upIMU, downQoE, downPose)
}
