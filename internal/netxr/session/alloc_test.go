package session

import (
	"net"
	"testing"

	"illixr/internal/netxr/wire"
	"illixr/internal/testutil"
)

type allocNop struct{}

func (allocNop) SessionStart(*Session) error             { return nil }
func (allocNop) SessionFrame(*Session, wire.Frame) error { return nil }
func (allocNop) SessionEnd(*Session, error)              {}

// TestZeroAllocLatestWinsSend pins the LatestWins slot path at zero
// steady-state allocations: the client never reads after the handshake,
// so the writer blocks on the synchronous pipe and every Send displaces
// the previous pose in its slot (payload copied into a recycled buffer,
// displaced buffer returned to the pool).
func TestZeroAllocLatestWinsSend(t *testing.T) {
	srv := NewServer(Config{}, allocNop{})
	defer srv.Shutdown(t.Context())
	client, server := net.Pipe()
	defer client.Close()
	sess := srv.HandleConn(server)
	if sess == nil {
		t.Fatal("conn refused")
	}
	w := wire.NewWriter(client)
	r := wire.NewReader(client)
	hello := wire.AppendHello(nil, wire.Hello{Proto: wire.Version, App: "alloc"})
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeHello, Payload: hello}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFrame(); err != nil { // welcome
		t.Fatal(err)
	}

	var payload []byte
	p := wire.Pose{T: 1}
	testutil.MustZeroAllocs(t, "Session.Send LatestWins", func() {
		payload = wire.AppendPose(payload[:0], p)
		_ = sess.Send(wire.Frame{Type: wire.TypePose, Payload: payload}, LatestWins)
	})
}
