package session

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"illixr/internal/netxr/wire"
)

// TestIdleJanitorTable drives the idle reaper through its interesting
// shapes: a silent session is reaped exactly once, a chatty one is
// never reaped, and reaping races cleanly against a handler goroutine
// hammering Send on the dying session (run under -race).
func TestIdleJanitorTable(t *testing.T) {
	cases := []struct {
		name string
		// keepAlive sends client pings often enough to defeat the timeout.
		keepAlive bool
		// hammer spins a goroutine calling sess.Send throughout the reap.
		hammer bool
		// wantReap is whether the session should be idle-reaped.
		wantReap bool
	}{
		{name: "silent-session-reaped-once", wantReap: true},
		{name: "active-session-survives", keepAlive: true, wantReap: false},
		{name: "reap-races-concurrent-send", hammer: true, wantReap: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newCollect()
			srv := NewServer(Config{IdleTimeout: 60 * time.Millisecond}, h)
			defer srv.Shutdown(context.Background())

			client, server := net.Pipe()
			defer client.Close()
			sess := srv.HandleConn(server)
			r, w, _ := clientHandshake(t, client)

			// drain the downlink so writes never wedge on the pipe
			go func() {
				for {
					if _, err := r.ReadFrame(); err != nil {
						return
					}
				}
			}()

			stop := make(chan struct{})
			var wg sync.WaitGroup
			if tc.keepAlive {
				wg.Add(1)
				go func() {
					defer wg.Done()
					tick := time.NewTicker(10 * time.Millisecond)
					defer tick.Stop()
					for i := uint64(0); ; i++ {
						select {
						case <-stop:
							return
						case <-tick.C:
							if err := w.WriteFrame(wire.Frame{Type: wire.TypePing,
								Payload: wire.AppendPing(nil, wire.Ping{Seq: i})}); err != nil {
								return
							}
						}
					}
				}()
			}
			if tc.hammer {
				wg.Add(1)
				go func() {
					defer wg.Done()
					payload := wire.AppendPose(nil, wire.Pose{T: 1})
					for {
						select {
						case <-stop:
							return
						default:
						}
						err := sess.Send(wire.Frame{Type: wire.TypePose, Payload: payload}, LatestWins)
						if errors.Is(err, ErrClosed) {
							return
						}
					}
				}()
			}

			if tc.wantReap {
				waitFor(t, func() bool { return srv.Len() == 0 })
			} else {
				time.Sleep(250 * time.Millisecond) // > 4 reap ticks
				if srv.Len() != 0 {
					// still alive, as wanted
				} else {
					t.Fatal("active session was reaped")
				}
			}
			close(stop)
			wg.Wait()

			if !tc.wantReap {
				return
			}
			// reaped exactly once: one SessionEnd, with the idle cause
			waitFor(t, func() bool { return h.endedCount() == 1 })
			h.mu.Lock()
			defer h.mu.Unlock()
			if len(h.ended) != 1 {
				t.Fatalf("SessionEnd ran %d times, want 1", len(h.ended))
			}
			for _, err := range h.ended {
				if !errors.Is(err, ErrIdleTimeout) {
					t.Fatalf("end err = %v, want ErrIdleTimeout", err)
				}
			}
		})
	}
}
