package session

import (
	"sync"

	"illixr/internal/netxr/wire"
	"illixr/internal/qos"
	"illixr/internal/recycle"
	"illixr/internal/telemetry"
)

// BatchingHandler interposes a qos.Batcher between the session reader
// goroutines and an inner Handler: frame types mapped to a kernel are
// copied off the reader's buffer and deferred into the batcher, so
// same-kernel work arriving from many sessions executes as one pool
// dispatch per flush instead of one per frame — the cross-session
// batching half of DESIGN.md §14. Unmapped types pass through inline.
//
// Semantics the inner handler must tolerate (bridge.Pipeline does):
//   - Batched frames run on pool workers, possibly concurrently across
//     sessions; frames from one session run in arrival order.
//   - A batched frame's error cannot terminate the session (the reader
//     has moved on) — it is counted in
//     illixr_qos_batch_handler_errors_total instead.
//   - SessionEnd flushes synchronously first, so no frame of a session
//     runs after its SessionEnd.
type BatchingHandler struct {
	Inner   Handler
	Batcher *qos.Batcher
	// Types maps the frame types to batch onto their kernel name (the
	// controller's KernelSpec.ID). Frame types absent here are handled
	// inline, preserving exact pre-batching behavior.
	Types map[wire.Type]string

	mu       sync.Mutex
	errs     []error
	batchedC *telemetry.Counter
	errorsC  *telemetry.Counter
}

// Instrument attaches batched-frame and deferred-error counters.
func (b *BatchingHandler) Instrument(reg *telemetry.Registry) {
	if b == nil || reg == nil {
		return
	}
	b.batchedC = reg.Counter(telemetry.MetricName("qos", "batch_frames_total"))
	b.errorsC = reg.Counter(telemetry.MetricName("qos", "batch_handler_errors_total"))
}

// SessionStart delegates.
func (b *BatchingHandler) SessionStart(s *Session) error { return b.Inner.SessionStart(s) }

// SessionFrame defers mapped frame types into the batcher (copying the
// payload, which aliases the reader's buffer) and handles the rest
// inline.
func (b *BatchingHandler) SessionFrame(s *Session, f wire.Frame) error {
	kernel, ok := b.Types[f.Type]
	if !ok || b.Batcher == nil {
		return b.Inner.SessionFrame(s, f)
	}
	buf := recycle.Bytes.Get(len(f.Payload))
	copy(buf, f.Payload)
	cp := f
	cp.Payload = buf
	b.Batcher.Submit(kernel, s.ID(), func() {
		err := b.Inner.SessionFrame(s, cp)
		recycle.Bytes.Put(buf)
		if err != nil {
			b.errorsC.Inc()
			b.mu.Lock()
			if len(b.errs) < 16 {
				b.errs = append(b.errs, err)
			}
			b.mu.Unlock()
		}
	})
	b.batchedC.Inc()
	return nil
}

// SessionEnd flushes pending batched work for every session (the
// batcher does not partition flushes), then delegates.
func (b *BatchingHandler) SessionEnd(s *Session, err error) {
	if b.Batcher != nil {
		b.Batcher.Flush()
	}
	b.Inner.SessionEnd(s, err)
}

// DeferredErrors returns up to the first 16 errors swallowed by the
// batched path (diagnostics; the counter has the true total).
func (b *BatchingHandler) DeferredErrors() []error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]error(nil), b.errs...)
}
