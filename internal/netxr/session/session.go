// Package session is the multi-session transport layer of the edge
// offload server: per-session reader/writer goroutines over any
// net.Conn, a versioned handshake, bounded send queues with a
// latest-wins drop policy for pose/frame traffic (stale XR data is
// worthless — delivering an old pose late is strictly worse than
// delivering the newest one now), backpressure accounting into
// illixr_netxr_* metrics, idle timeouts, and graceful drain on shutdown.
package session

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"illixr/internal/netxr/binlog"
	"illixr/internal/netxr/wire"
	"illixr/internal/recycle"
	"illixr/internal/telemetry"
)

// Class selects the queueing discipline of an outbound frame.
type Class int

const (
	// Reliable frames (handshake, QoE, pings, bye) queue FIFO; when the
	// queue is full the *new* frame is rejected with ErrBackpressure so
	// the producer — not the consumer — absorbs the overload.
	Reliable Class = iota
	// LatestWins frames (poses, reprojected frames) keep one slot per
	// message type: a newer frame silently displaces an unsent older one.
	// Displacements are counted, never errors — dropping stale poses is
	// the correct behaviour, not a failure.
	LatestWins
)

// Session errors.
var (
	ErrClosed       = errors.New("session: closed")
	ErrBackpressure = errors.New("session: reliable send queue full")
	ErrIdleTimeout  = errors.New("session: idle timeout")
	ErrHandshake    = errors.New("session: handshake failed")
	ErrAdmission    = errors.New("session: admission refused")
)

// BackpressureError is the typed, retryable rejection of a reliable Send
// when the queue is full: the producer should back off and retry (or drop
// deliberately), never treat it as session death. errors.Is matches both
// ErrBackpressure and the generic retryable test below.
type BackpressureError struct {
	Session uint64
	Queued  int // frames waiting when the send was refused
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("session %d: reliable send queue full (%d queued)", e.Session, e.Queued)
}

// Unwrap lets errors.Is(err, ErrBackpressure) hold.
func (e *BackpressureError) Unwrap() error { return ErrBackpressure }

// Retryable marks the error transient.
func (e *BackpressureError) Retryable() bool { return true }

// IsRetryable reports whether a send/admission failure is transient: the
// caller should retry (after backoff) instead of tearing the session down.
func IsRetryable(err error) bool {
	if errors.Is(err, ErrBackpressure) {
		return true
	}
	var r interface{ Retryable() bool }
	return errors.As(err, &r) && r.Retryable()
}

// metrics bundles the per-server instruments (nil-safe when no registry
// is installed).
type metrics struct {
	sessionsActive  *telemetry.Gauge
	sessionsTotal   *telemetry.Counter
	recvFrames      *telemetry.Counter
	sentFrames      *telemetry.Counter
	sendDropped     *telemetry.Counter
	backpressure    *telemetry.Counter
	resumed         *telemetry.Counter
	refused         *telemetry.Counter
	decodeErrors    *telemetry.Counter
	bytesIn         *telemetry.Counter
	bytesOut        *telemetry.Counter
	queueDepth      *telemetry.Gauge
	shardContention *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry) *metrics {
	n := func(name string) string { return telemetry.MetricName("netxr", name) }
	return &metrics{
		sessionsActive:  reg.Gauge(n("sessions_active")),
		sessionsTotal:   reg.Counter(n("sessions_total")),
		recvFrames:      reg.Counter(n("recv_frames_total")),
		sentFrames:      reg.Counter(n("sent_frames_total")),
		sendDropped:     reg.Counter(n("send_dropped_total")),
		backpressure:    reg.Counter(n("backpressure_total")),
		resumed:         reg.Counter(n("sessions_resumed_total")),
		refused:         reg.Counter(n("admission_refused_total")),
		decodeErrors:    reg.Counter(n("decode_errors_total")),
		bytesIn:         reg.Counter(n("bytes_in_total")),
		bytesOut:        reg.Counter(n("bytes_out_total")),
		queueDepth:      reg.Gauge(n("queue_depth")),
		shardContention: reg.Counter(n("shard_contention_total")),
	}
}

// Session is one connected client: a reader goroutine decoding frames
// into the handler and a writer goroutine draining the send queues.
// Send is safe from any goroutine.
type Session struct {
	id      uint64
	conn    net.Conn
	srv     *Server
	hello   wire.Hello
	created time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	fifo     []wire.Frame
	slots    map[wire.Type]wire.Frame
	slotSeq  []wire.Type // arrival order of occupied slots (drain order)
	closed   bool
	closeErr error
	drainReq bool   // close the connection once the queues are empty
	byeSent  bool   // terminal Bye already handed to the writer
	byeWhy   string // reason carried by the terminal Bye
	byeRetry uint32 // Retry-After hint carried by the terminal Bye (ms)

	lastRecv atomic.Int64 // unix nanos of the last decoded frame

	sent         atomic.Uint64
	dropped      atomic.Uint64
	received     atomic.Uint64
	decodeErrors atomic.Uint64
}

// ID returns the server-assigned session id.
func (s *Session) ID() uint64 { return s.id }

// Hello returns the client's handshake message.
func (s *Session) Hello() wire.Hello { return s.hello }

// RemoteAddr reports the peer address.
func (s *Session) RemoteAddr() string {
	if a := s.conn.RemoteAddr(); a != nil {
		return a.String()
	}
	return ""
}

// Uptime is the session age.
func (s *Session) Uptime() time.Duration { return time.Since(s.created) }

// Stats returns the cumulative send/receive accounting.
func (s *Session) Stats() (sent, dropped, received, decodeErrs uint64) {
	return s.sent.Load(), s.dropped.Load(), s.received.Load(), s.decodeErrors.Load()
}

// QueueDepth returns the current number of queued outbound frames.
func (s *Session) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.fifo) + len(s.slotSeq)
}

// Send enqueues one outbound frame under the given class.
func (s *Session) Send(f wire.Frame, class Class) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.drainReq {
		return ErrClosed
	}
	if class != LatestWins && len(s.fifo) >= s.srv.cfg.QueueLen {
		s.dropped.Add(1)
		s.srv.m.sendDropped.Inc()
		s.srv.m.backpressure.Inc()
		return &BackpressureError{Session: s.id, Queued: len(s.fifo)}
	}
	// The payload escapes to the writer goroutine: copy it into a recycled
	// buffer so callers may reuse their encode buffers. The writer returns
	// the buffer to the pool after the wire write (the rejection checks
	// above run first so a refused frame never touches the pool).
	if len(f.Payload) > 0 {
		buf := recycle.Bytes.Get(len(f.Payload))
		copy(buf, f.Payload)
		f.Payload = buf
	}
	switch class {
	case LatestWins:
		if old, occupied := s.slots[f.Type]; occupied {
			recycle.Bytes.Put(old.Payload) // displaced before reaching the wire
			s.slots[f.Type] = f
			s.dropped.Add(1)
			s.srv.m.sendDropped.Inc()
		} else {
			s.slots[f.Type] = f
			s.slotSeq = append(s.slotSeq, f.Type)
		}
	default:
		s.fifo = append(s.fifo, f)
	}
	s.srv.m.queueDepth.Set(float64(len(s.fifo) + len(s.slotSeq)))
	s.cond.Signal()
	return nil
}

// Drain asks the writer to flush everything queued, send a terminal Bye,
// and then close the connection. Used by graceful shutdown. Drain is
// idempotent: the first call wins the reason; later Drain or Close calls —
// including after the drain deadline has force-closed the session — are
// no-ops and can never re-arm a second Bye (the byeSent latch is checked
// by the writer, never reset).
func (s *Session) Drain(reason string) { s.DrainRetry(reason, 0) }

// DrainRetry is Drain with a Retry-After hint: a non-zero retryMs tells
// the client the disconnect is transient (replica drain, admission
// refusal) and it should reconnect with its resume token after at least
// that many milliseconds. Same idempotence contract as Drain.
func (s *Session) DrainRetry(reason string, retryMs uint32) {
	s.mu.Lock()
	if s.closed || s.drainReq {
		// already draining or gone: the first reason and hint stand
		s.mu.Unlock()
		return
	}
	s.drainReq = true
	s.byeWhy = reason
	s.byeRetry = retryMs
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Close terminates the session immediately, abandoning queued frames.
// Abandoned payloads go back to the buffer pool: the writer can no longer
// take them once closed is set.
func (s *Session) Close(cause error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.closeErr = cause
	for i := range s.fifo {
		recycle.Bytes.Put(s.fifo[i].Payload)
		s.fifo[i] = wire.Frame{}
	}
	s.fifo = s.fifo[:0]
	for t, f := range s.slots {
		recycle.Bytes.Put(f.Payload)
		delete(s.slots, t)
	}
	s.slotSeq = s.slotSeq[:0]
	s.cond.Broadcast()
	s.mu.Unlock()
	_ = s.conn.Close()
}

// Err returns the terminal error after close (nil for a clean close).
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeErr
}

// drainByeTimeout bounds the write of the terminal drain Bye: a peer
// that has stopped reading must not pin session teardown for the full
// WriteTimeout.
const drainByeTimeout = time.Second

// nextBatch blocks until at least one frame is queued, then pops up to
// max frames in send order — the whole FIFO first, then latest-wins
// slots in arrival order, exactly the discipline the per-frame path
// used. If a drain is pending and the batch has room, the terminal Bye
// rides the same batch (terminal=true). ok=false means exit. The flush
// "tick" is queue exhaustion: a lone frame on a quiet session flushes
// immediately, so coalescing adds zero latency and no wall-clock timer
// (virtual-time safe; DESIGN.md §15).
func (s *Session) nextBatch(batch []wire.Frame, max int) (out []wire.Frame, ok, terminal bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return batch, false, false
		}
		for len(batch) < max && len(s.fifo) > 0 {
			batch = append(batch, s.fifo[0])
			copy(s.fifo, s.fifo[1:])
			s.fifo[len(s.fifo)-1] = wire.Frame{}
			s.fifo = s.fifo[:len(s.fifo)-1]
		}
		for len(batch) < max && len(s.slotSeq) > 0 {
			t := s.slotSeq[0]
			copy(s.slotSeq, s.slotSeq[1:])
			s.slotSeq = s.slotSeq[:len(s.slotSeq)-1]
			batch = append(batch, s.slots[t])
			delete(s.slots, t)
		}
		if s.drainReq && !s.byeSent && len(batch) < max {
			// the queues are empty (or the batch is full — then the Bye
			// waits for the next batch): append the terminal Bye
			if len(s.fifo) == 0 && len(s.slotSeq) == 0 {
				s.byeSent = true
				batch = append(batch, wire.Frame{Type: wire.TypeBye,
					Payload: wire.AppendBye(nil, wire.Bye{Reason: s.byeWhy, RetryAfterMs: s.byeRetry})})
				return batch, true, true
			}
		}
		if len(batch) > 0 {
			return batch, true, false
		}
		if s.drainReq && s.byeSent {
			return batch, false, false // flushed everything, incl. the Bye
		}
		s.cond.Wait()
	}
}

// writeLoop drains the queues onto the wire, up to FlushFrames frames
// per wakeup coalesced into one buffered write.
func (s *Session) writeLoop(done chan<- struct{}) {
	defer close(done)
	w := wire.NewWriter(s.conn)
	max := s.srv.cfg.FlushFrames
	batch := make([]wire.Frame, 0, max)
	for {
		var ok, terminal bool
		batch, ok, terminal = s.nextBatch(batch[:0], max)
		if !ok {
			if s.drained() {
				s.Close(nil)
			}
			return
		}
		timeout := s.srv.cfg.WriteTimeout
		if terminal && (timeout <= 0 || timeout > drainByeTimeout) {
			timeout = drainByeTimeout
		}
		if timeout > 0 {
			_ = s.conn.SetWriteDeadline(time.Now().Add(timeout))
		}
		before := w.Bytes()
		for _, f := range batch {
			w.Queue(f)
		}
		err := w.Flush()
		if err == nil && s.srv.cfg.Capture != nil {
			// downlink tap: after the batch hit the wire, before the
			// payloads return to the pool — in batch order, so the binlog
			// sees exactly the wire order. The Writer's lock is the single
			// append path shared with the reader goroutine's uplink tap
			// (DESIGN.md §13).
			for _, f := range batch {
				_ = s.srv.cfg.Capture.Record(binlog.DirDown, f)
			}
		}
		for i := range batch {
			recycle.Bytes.Put(batch[i].Payload) // wire.Writer copied it
			batch[i] = wire.Frame{}
		}
		if err != nil {
			s.Close(fmt.Errorf("session %d: write: %w", s.id, err))
			return
		}
		s.sent.Add(uint64(len(batch)))
		s.srv.m.sentFrames.Add(len(batch))
		s.srv.m.bytesOut.Add(int(w.Bytes() - before))
	}
}

func (s *Session) drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainReq && !s.closed
}

// readLoop performs the handshake and then decodes frames into the
// handler until the connection ends.
func (s *Session) readLoop() error {
	r := wire.NewReader(s.conn)
	if err := s.handshake(r); err != nil {
		return err
	}
	if err := s.srv.handler.SessionStart(s); err != nil {
		return err
	}
	for {
		before := r.Bytes()
		f, err := r.ReadFrame()
		if err != nil {
			if err == io.EOF {
				return nil // clean close on a frame boundary
			}
			if errors.Is(err, net.ErrClosed) || s.isClosed() {
				return s.Err()
			}
			s.decodeErrors.Add(1)
			s.srv.m.decodeErrors.Inc()
			return fmt.Errorf("session %d: decode: %w", s.id, err)
		}
		s.lastRecv.Store(time.Now().UnixNano())
		s.received.Add(1)
		s.srv.m.recvFrames.Inc()
		s.srv.m.bytesIn.Add(int(r.Bytes() - before))
		if s.srv.cfg.Capture != nil {
			// uplink tap: f.Payload aliases the reader's buffer, but Record
			// copies synchronously before returning, so the alias is safe.
			_ = s.srv.cfg.Capture.Record(binlog.DirUp, f)
		}
		switch f.Type {
		case wire.TypePing:
			// wire-level RTT probe: echo without involving the handler
			p, perr := wire.DecodePing(f.Payload)
			if perr != nil {
				s.decodeErrors.Add(1)
				s.srv.m.decodeErrors.Inc()
				return fmt.Errorf("session %d: ping: %w", s.id, perr)
			}
			_ = s.Send(wire.Frame{Type: wire.TypePong, Payload: wire.AppendPing(nil, p)}, Reliable)
		case wire.TypeBye:
			return nil
		default:
			if err := s.srv.handler.SessionFrame(s, f); err != nil {
				return err
			}
		}
	}
}

func (s *Session) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// handshake expects a Hello as the very first frame and answers Welcome.
// When an Admission is configured it decides the Welcome — issuing resume
// tokens, restoring snapshots for reconnecting clients, or refusing with
// a Retry-After hint (the refusal rides the terminal drain Bye).
func (s *Session) handshake(r *wire.Reader) error {
	if s.srv.cfg.HandshakeTimeout > 0 {
		_ = s.conn.SetReadDeadline(time.Now().Add(s.srv.cfg.HandshakeTimeout))
		defer func() { _ = s.conn.SetReadDeadline(time.Time{}) }()
	}
	f, err := r.ReadFrame()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if f.Type != wire.TypeHello {
		return fmt.Errorf("%w: first frame is %v, want hello", ErrHandshake, f.Type)
	}
	h, err := wire.DecodeHello(f.Payload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if s.srv.cfg.Capture != nil {
		_ = s.srv.cfg.Capture.Record(binlog.DirUp, f)
	}
	if h.Proto != wire.Version {
		// the drain Bye the server sends on teardown carries this reason
		return fmt.Errorf("%w: client speaks v%d, server v%d", ErrHandshake, h.Proto, wire.Version)
	}
	s.hello = h
	s.lastRecv.Store(time.Now().UnixNano())
	welcome := wire.Welcome{Proto: wire.Version, Session: s.id, ResumeToken: s.id}
	if adm := s.srv.cfg.Admission; adm != nil {
		w, aerr := adm.Admit(s.id, h)
		if aerr != nil {
			s.srv.m.refused.Inc()
			return aerr
		}
		welcome = w
		// the transport owns these fields regardless of the admission
		welcome.Proto = wire.Version
		welcome.Session = s.id
	}
	if welcome.Resumed {
		s.srv.m.resumed.Inc()
	}
	payload := wire.AppendWelcome(nil, welcome)
	return s.Send(wire.Frame{Type: wire.TypeWelcome, Payload: payload}, Reliable)
}

// Info is the introspection snapshot of one live session (the /sessions
// debug endpoint's row).
type Info struct {
	ID           uint64  `json:"id"`
	Remote       string  `json:"remote"`
	App          string  `json:"app"`
	UptimeSec    float64 `json:"uptime_sec"`
	QueueDepth   int     `json:"queue_depth"`
	Sent         uint64  `json:"sent"`
	Dropped      uint64  `json:"dropped"`
	Received     uint64  `json:"received"`
	DecodeErrors uint64  `json:"decode_errors"`
}

// Lister is the read-only view the debug endpoint consumes.
type Lister interface {
	Sessions() []Info
}
