package session

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"illixr/internal/netxr/netsim"
	"illixr/internal/netxr/wire"
	"illixr/internal/sensors"
	"illixr/internal/telemetry"
)

// collectHandler records lifecycle events and frames.
type collectHandler struct {
	mu      sync.Mutex
	started []uint64
	frames  []wire.Frame
	ended   map[uint64]error
	onFrame func(s *Session, f wire.Frame) error
}

func newCollect() *collectHandler {
	return &collectHandler{ended: map[uint64]error{}}
}

func (h *collectHandler) SessionStart(s *Session) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.started = append(h.started, s.ID())
	return nil
}

func (h *collectHandler) SessionFrame(s *Session, f wire.Frame) error {
	if h.onFrame != nil {
		return h.onFrame(s, f)
	}
	cp := f
	cp.Payload = append([]byte(nil), f.Payload...)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.frames = append(h.frames, cp)
	return nil
}

func (h *collectHandler) SessionEnd(s *Session, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ended[s.ID()] = err
}

func (h *collectHandler) frameCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.frames)
}

func (h *collectHandler) endedCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ended)
}

// clientHandshake performs the Hello/Welcome exchange from the client side.
func clientHandshake(t *testing.T, conn net.Conn) (*wire.Reader, *wire.Writer, wire.Welcome) {
	t.Helper()
	r, w := wire.NewReader(conn), wire.NewWriter(conn)
	hello := wire.AppendHello(nil, wire.Hello{Proto: wire.Version, App: "test", IMURateHz: 500, CamRateHz: 15})
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeHello, Payload: hello}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatalf("welcome: %v", err)
	}
	if f.Type != wire.TypeWelcome {
		t.Fatalf("first reply = %v, want welcome", f.Type)
	}
	welcome, err := wire.DecodeWelcome(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return r, w, welcome
}

func TestHandshakeAndEcho(t *testing.T) {
	h := newCollect()
	srv := NewServer(Config{Metrics: telemetry.NewRegistry()}, h)
	defer srv.Shutdown(context.Background())

	client, server := net.Pipe()
	defer client.Close()
	if srv.HandleConn(server) == nil {
		t.Fatal("conn refused")
	}
	r, w, welcome := clientHandshake(t, client)
	if welcome.Session == 0 || welcome.Proto != wire.Version {
		t.Fatalf("welcome: %+v", welcome)
	}

	// in-layer ping: echoed as pong without touching the handler
	ping := wire.AppendPing(nil, wire.Ping{Seq: 3, T: 0.5})
	if err := w.WriteFrame(wire.Frame{Type: wire.TypePing, Payload: ping}); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TypePong {
		t.Fatalf("got %v, want pong", f.Type)
	}
	pong, err := wire.DecodePing(f.Payload)
	if err != nil || pong.Seq != 3 {
		t.Fatalf("pong: %+v err %v", pong, err)
	}

	// data frame reaches the handler
	imu := wire.AppendIMU(nil, sensors.IMUSample{T: 0.1})
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeIMU, Payload: imu}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.frameCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.frameCount() != 1 {
		t.Fatal("handler never saw the IMU frame")
	}
}

func TestHandshakeVersionSkew(t *testing.T) {
	h := newCollect()
	srv := NewServer(Config{}, h)
	defer srv.Shutdown(context.Background())

	client, server := net.Pipe()
	defer client.Close()
	srv.HandleConn(server)

	w := wire.NewWriter(client)
	hello := wire.AppendHello(nil, wire.Hello{Proto: wire.Version + 1, App: "old"})
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeHello, Payload: hello}); err != nil {
		t.Fatal(err)
	}
	// server answers Bye then closes
	r := wire.NewReader(client)
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatalf("expected a bye, got %v", err)
	}
	if f.Type != wire.TypeBye {
		t.Fatalf("got %v, want bye", f.Type)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Len() != 0 {
		t.Fatal("skewed session still registered")
	}
}

func TestHandshakeFirstFrameNotHello(t *testing.T) {
	h := newCollect()
	srv := NewServer(Config{}, h)
	defer srv.Shutdown(context.Background())

	client, server := net.Pipe()
	defer client.Close()
	srv.HandleConn(server)

	w := wire.NewWriter(client)
	if err := w.WriteFrame(wire.Frame{Type: wire.TypeIMU, Payload: wire.AppendIMU(nil, sensors.IMUSample{})}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.endedCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, err := range h.ended {
		if !errors.Is(err, ErrHandshake) {
			t.Fatalf("end err = %v, want ErrHandshake", err)
		}
	}
	if len(h.started) != 0 {
		t.Fatal("SessionStart ran without a handshake")
	}
}

func TestLatestWinsDisplacement(t *testing.T) {
	h := newCollect()
	srv := NewServer(Config{}, h)
	defer srv.Shutdown(context.Background())

	client, server := net.Pipe()
	defer client.Close()
	sess := srv.HandleConn(server)
	r, _, _ := clientHandshake(t, client)

	// stall the reader: queue five poses; only the newest survives
	var bufs [5][]byte
	for i := range bufs {
		bufs[i] = wire.AppendPose(nil, wire.Pose{T: float64(i)})
		if err := sess.Send(wire.Frame{Type: wire.TypePose, Payload: bufs[i]}, LatestWins); err != nil {
			t.Fatal(err)
		}
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.DecodePose(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.T != 4 {
		t.Fatalf("delivered pose T=%v, want the newest (4)", got.T)
	}
	if _, dropped, _, _ := sess.Stats(); dropped != 4 {
		t.Fatalf("dropped = %d, want 4", dropped)
	}
}

func TestReliableBackpressure(t *testing.T) {
	h := newCollect()
	srv := NewServer(Config{QueueLen: 4}, h)
	defer srv.Shutdown(context.Background())

	client, server := net.Pipe()
	defer client.Close()
	sess := srv.HandleConn(server)
	clientHandshake(t, client)

	// the client is not reading; one frame may be in flight in the writer,
	// so fill until the queue rejects
	var rejected bool
	payload := wire.AppendPing(nil, wire.Ping{})
	for i := 0; i < 16; i++ {
		err := sess.Send(wire.Frame{Type: wire.TypeQoE, Payload: payload}, Reliable)
		if errors.Is(err, ErrBackpressure) {
			rejected = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !rejected {
		t.Fatal("reliable queue never pushed back")
	}
}

func TestIdleTimeoutReapsSession(t *testing.T) {
	h := newCollect()
	srv := NewServer(Config{IdleTimeout: 50 * time.Millisecond}, h)
	defer srv.Shutdown(context.Background())

	client, server := net.Pipe()
	defer client.Close()
	srv.HandleConn(server)
	clientHandshake(t, client)

	deadline := time.Now().Add(3 * time.Second)
	for srv.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Len() != 0 {
		t.Fatal("idle session never reaped")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, err := range h.ended {
		if !errors.Is(err, ErrIdleTimeout) {
			t.Fatalf("end err = %v, want ErrIdleTimeout", err)
		}
	}
}

func TestGracefulDrainFlushesBeforeBye(t *testing.T) {
	h := newCollect()
	srv := NewServer(Config{}, h)

	client, server := net.Pipe()
	defer client.Close()
	sess := srv.HandleConn(server)
	r, _, _ := clientHandshake(t, client)

	// queue one reliable and one latest-wins frame, then drain: the client
	// must see data first and the Bye strictly last
	if err := sess.Send(wire.Frame{Type: wire.TypeQoE,
		Payload: wire.AppendQoE(nil, wire.QoE{Session: 1})}, Reliable); err != nil {
		t.Fatal(err)
	}
	if err := sess.Send(wire.Frame{Type: wire.TypePose,
		Payload: wire.AppendPose(nil, wire.Pose{T: 9})}, LatestWins); err != nil {
		t.Fatal(err)
	}
	go srv.Shutdown(context.Background())

	var types []wire.Type
	for {
		f, err := r.ReadFrame()
		if err != nil {
			break
		}
		types = append(types, f.Type)
		if f.Type == wire.TypeBye {
			break
		}
	}
	if len(types) != 3 || types[0] != wire.TypeQoE || types[1] != wire.TypePose || types[2] != wire.TypeBye {
		t.Fatalf("drain order = %v, want [qoe pose bye]", types)
	}
}

func TestServerFullRefusal(t *testing.T) {
	h := newCollect()
	srv := NewServer(Config{MaxSessions: 1}, h)
	defer srv.Shutdown(context.Background())

	c1, s1 := net.Pipe()
	defer c1.Close()
	if srv.HandleConn(s1) == nil {
		t.Fatal("first conn refused")
	}
	clientHandshake(t, c1)

	c2, s2 := net.Pipe()
	defer c2.Close()
	if srv.HandleConn(s2) != nil {
		t.Fatal("second conn admitted past the cap")
	}
	f, err := wire.NewReader(c2).ReadFrame()
	if err != nil {
		t.Fatalf("refusal read: %v", err)
	}
	bye, err := wire.DecodeBye(f.Payload)
	if f.Type != wire.TypeBye || err != nil || bye.Reason != "server full" {
		t.Fatalf("refusal = %v %+v err %v", f.Type, bye, err)
	}
}

func TestInjectedLinkFailureEndsSession(t *testing.T) {
	h := newCollect()
	srv := NewServer(Config{Metrics: telemetry.NewRegistry()}, h)
	defer srv.Shutdown(context.Background())

	client, server := netsim.Pipe()
	defer client.Close()
	sess := srv.HandleConn(server)
	_, w, _ := clientHandshake(t, client)

	// sever the server→client direction mid-stream; the session's writer
	// must observe the failure and terminate the session
	server.FailAfter(0)
	for i := 0; i < 50 && srv.Len() > 0; i++ {
		_ = sess.Send(wire.Frame{Type: wire.TypePose,
			Payload: wire.AppendPose(nil, wire.Pose{T: float64(i)})}, LatestWins)
		_ = w.WriteFrame(wire.Frame{Type: wire.TypeIMU,
			Payload: wire.AppendIMU(nil, sensors.IMUSample{T: float64(i)})})
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.Now().Add(3 * time.Second)
	for srv.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Len() != 0 {
		t.Fatal("session survived a dead link")
	}
}

// TestMultiSessionSoak drives 8 concurrent sessions over net.Pipe with
// real goroutines — run under -race this is the concurrency proof for the
// session layer (the deterministic half lives in the network bench).
func TestMultiSessionSoak(t *testing.T) {
	const nSessions = 8
	const nFrames = 200

	reg := telemetry.NewRegistry()
	var handled atomic.Uint64
	h := newCollect()
	h.onFrame = func(s *Session, f wire.Frame) error {
		if f.Type == wire.TypeIMU {
			if _, err := wire.DecodeIMU(f.Payload); err != nil {
				return fmt.Errorf("soak decode: %w", err)
			}
			handled.Add(1)
			// answer every 10th sample with a pose (latest-wins)
			if handled.Load()%10 == 0 {
				_ = s.Send(wire.Frame{Type: wire.TypePose,
					Payload: wire.AppendPose(nil, wire.Pose{T: 1})}, LatestWins)
			}
		}
		return nil
	}
	srv := NewServer(Config{Metrics: reg, MaxSessions: nSessions}, h)

	var wg sync.WaitGroup
	for i := 0; i < nSessions; i++ {
		client, server := netsim.Pipe()
		if srv.HandleConn(server) == nil {
			t.Fatal("conn refused")
		}
		wg.Add(1)
		go func(conn net.Conn, idx int) {
			defer wg.Done()
			defer conn.Close()
			r, w, _ := clientHandshake(t, conn)
			go func() { // drain the downlink so the server writer never blocks
				for {
					if _, err := r.ReadFrame(); err != nil {
						return
					}
				}
			}()
			var buf []byte
			for j := 0; j < nFrames; j++ {
				buf = wire.AppendIMU(buf[:0], sensors.IMUSample{T: float64(j) * 0.002})
				if err := w.WriteFrame(wire.Frame{Type: wire.TypeIMU, Payload: buf}); err != nil {
					t.Errorf("session %d frame %d: %v", idx, j, err)
					return
				}
			}
			if err := w.WriteFrame(wire.Frame{Type: wire.TypeBye,
				Payload: wire.AppendBye(nil, wire.Bye{Reason: "done"})}); err != nil {
				t.Errorf("session %d bye: %v", idx, err)
			}
		}(client, i)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := handled.Load(); got != nSessions*nFrames {
		t.Fatalf("handled %d IMU frames, want %d", got, nSessions*nFrames)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.started) != nSessions || len(h.ended) != nSessions {
		t.Fatalf("lifecycle: %d started %d ended", len(h.started), len(h.ended))
	}
	for id, err := range h.ended {
		if err != nil {
			t.Fatalf("session %d ended with %v", id, err)
		}
	}
}

func TestSessionsListing(t *testing.T) {
	h := newCollect()
	srv := NewServer(Config{}, h)
	defer srv.Shutdown(context.Background())

	var conns []net.Conn
	for i := 0; i < 3; i++ {
		client, server := net.Pipe()
		conns = append(conns, client)
		srv.HandleConn(server)
		clientHandshake(t, client)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	infos := srv.Sessions()
	if len(infos) != 3 {
		t.Fatalf("listed %d sessions, want 3", len(infos))
	}
	for i, info := range infos {
		if i > 0 && infos[i-1].ID >= info.ID {
			t.Fatal("listing not sorted by id")
		}
		if info.App != "test" {
			t.Fatalf("app = %q", info.App)
		}
	}
}
