package session

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"illixr/internal/config"
	"illixr/internal/netxr/binlog"
	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
)

// Config tunes the server. The zero value is usable; unset fields take
// the defaults of config.DefaultNet().
type Config struct {
	// MaxSessions caps concurrent sessions; excess connects are refused
	// with a Bye. 0 = default.
	MaxSessions int
	// QueueLen bounds each session's reliable send queue. 0 = default.
	QueueLen int
	// IdleTimeout closes sessions that stop sending. 0 = default,
	// negative = disabled.
	IdleTimeout time.Duration
	// HandshakeTimeout bounds the wait for the client Hello.
	HandshakeTimeout time.Duration
	// WriteTimeout bounds each frame write.
	WriteTimeout time.Duration
	// RetryAfter is the reconnect hint attached to capacity refusals: a
	// full server refuses with a Bye telling the client to come back in
	// this long instead of a terminal error. 0 = default (1 s).
	RetryAfter time.Duration
	// Admission, when non-nil, decides every handshake: it issues resume
	// tokens, restores resumed-session state, and refuses admission with
	// Retry-After hints. nil admits every session fresh with the session
	// id as its resume token.
	Admission Admission
	// Capture, when non-nil, records every frame crossing this server —
	// uplink after decode, downlink after the wire write — into one
	// binlog (DESIGN.md §13). The Writer is the single append path, so
	// reader- and writer-goroutine frames serialize in receipt order.
	// The caller that opened the Writer closes it after Shutdown/Abort
	// returns; late records are refused with ErrClosed, never lost
	// silently mid-file.
	Capture *binlog.Writer
	// Metrics receives illixr_netxr_* instruments; nil = uninstrumented.
	Metrics *telemetry.Registry
}

// Admission decides handshake outcomes; the fleet coordinator implements
// it (internal/netxr/fleet). Admit runs on the session's reader goroutine
// after the Hello is validated; the returned Welcome's Proto and Session
// fields are overwritten by the transport. Returning an error refuses the
// session — return an *AdmissionError to carry a Retry-After hint onto
// the refusal Bye.
type Admission interface {
	Admit(sessionID uint64, h wire.Hello) (wire.Welcome, error)
}

// AdmissionError is a transient admission refusal: the client should
// reconnect (with its resume token) after RetryAfter.
type AdmissionError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("session: admission refused: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// Unwrap lets errors.Is(err, ErrAdmission) hold.
func (e *AdmissionError) Unwrap() error { return ErrAdmission }

// Retryable marks the refusal transient when a retry hint is present.
func (e *AdmissionError) Retryable() bool { return e.RetryAfter > 0 }

func (c Config) withDefaults() Config {
	d := config.DefaultNet()
	if c.MaxSessions == 0 {
		c.MaxSessions = d.MaxSessions
	}
	if c.QueueLen == 0 {
		c.QueueLen = d.QueueLen
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = time.Duration(d.IdleTimeoutSec * float64(time.Second))
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Handler reacts to session lifecycle events. SessionFrame runs on the
// session's reader goroutine; returning an error terminates the session
// (the supervisor owning the server may then restart its pipeline).
type Handler interface {
	// SessionStart runs after a successful handshake.
	SessionStart(s *Session) error
	// SessionFrame receives every decoded non-control frame.
	SessionFrame(s *Session, f wire.Frame) error
	// SessionEnd runs exactly once when the session terminates; err is
	// nil for a clean close.
	SessionEnd(s *Session, err error)
}

// Server accepts connections and runs one Session per client.
type Server struct {
	cfg     Config
	handler Handler
	m       *metrics

	mu       sync.Mutex
	sessions map[uint64]*Session
	nextID   uint64
	closed   bool
	ln       net.Listener

	wg          sync.WaitGroup
	janitorC    chan struct{}
	janitor     sync.Once
	janitorStop sync.Once
}

// NewServer builds a server with the given handler.
func NewServer(cfg Config, h Handler) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		handler:  h,
		sessions: map[uint64]*Session{},
		janitorC: make(chan struct{}),
	}
	s.m = newMetrics(s.cfg.Metrics)
	return s
}

// Serve accepts on ln until Shutdown (or a listener error). It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.HandleConn(conn)
	}
}

// HandleConn adopts an established connection (Serve uses it; tests feed
// net.Pipe ends directly). Returns nil if the server is full or closed —
// the conn is then refused and closed.
func (s *Server) HandleConn(conn net.Conn) *Session {
	s.startJanitor()
	s.mu.Lock()
	if s.closed || len(s.sessions) >= s.cfg.MaxSessions {
		full := !s.closed
		s.mu.Unlock()
		if full {
			// best-effort refusal so the client sees why; the Retry-After
			// hint makes it an admission-control push-back rather than a
			// hard error — the client backs off and redials. Written off
			// the accept path because synchronous transports (net.Pipe)
			// block the write until the peer reads.
			retryMs := uint32(s.cfg.RetryAfter.Milliseconds())
			s.m.refused.Inc()
			go func() {
				w := wire.NewWriter(conn)
				_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
				_ = w.WriteFrame(wire.Frame{Type: wire.TypeBye,
					Payload: wire.AppendBye(nil, wire.Bye{Reason: "server full", RetryAfterMs: retryMs})})
				_ = conn.Close()
			}()
		} else {
			_ = conn.Close()
		}
		return nil
	}
	s.nextID++
	sess := &Session{id: s.nextID, conn: conn, srv: s, created: time.Now()}
	sess.cond = sync.NewCond(&sess.mu)
	sess.slots = map[wire.Type]wire.Frame{}
	s.sessions[sess.id] = sess
	active := len(s.sessions)
	// Add under the lock: it must be ordered against the closed check,
	// or a racing Abort/Shutdown could be inside wg.Wait when the
	// counter goes 0→1 (undefined per sync.WaitGroup).
	s.wg.Add(1)
	s.mu.Unlock()

	s.m.sessionsTotal.Inc()
	s.m.sessionsActive.Set(float64(active))

	go s.run(sess)
	return sess
}

// run owns one session's lifecycle: spawn the writer, drive the reader,
// tear down, notify the handler, unregister.
func (s *Server) run(sess *Session) {
	defer s.wg.Done()
	writerDone := make(chan struct{})
	go sess.writeLoop(writerDone)

	err := sess.readLoop()
	if err != nil {
		// terminal error: flush what's queued and tell the peer why —
		// every write is deadline-bounded, so a stalled peer cannot pin
		// the teardown. Admission refusals carry their Retry-After hint
		// onto the Bye so a refused client knows to come back.
		var ae *AdmissionError
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			sess.DrainRetry(err.Error(), uint32(ae.RetryAfter.Milliseconds()))
		} else {
			sess.Drain(err.Error())
		}
	} else {
		// clean end-of-stream: flush what's queued, then close
		sess.Drain("eof")
	}
	<-writerDone
	sess.Close(err) // no-op if the writer already closed it

	s.mu.Lock()
	delete(s.sessions, sess.id)
	active := len(s.sessions)
	s.mu.Unlock()
	s.m.sessionsActive.Set(float64(active))

	s.handler.SessionEnd(sess, err)
}

// startJanitor launches the idle reaper on first use.
func (s *Server) startJanitor() {
	if s.cfg.IdleTimeout <= 0 {
		return
	}
	s.janitor.Do(func() {
		tick := s.cfg.IdleTimeout / 4
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		go func() {
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-s.janitorC:
					return
				case <-t.C:
					s.reapIdle()
				}
			}
		}()
	})
}

func (s *Server) reapIdle() {
	cutoff := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
	for _, sess := range s.snapshotSessions() {
		if last := sess.lastRecv.Load(); last > 0 && last < cutoff {
			sess.Close(fmt.Errorf("%w after %s", ErrIdleTimeout, s.cfg.IdleTimeout))
		}
	}
}

func (s *Server) snapshotSessions() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	return out
}

// Len returns the number of live sessions.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Sessions implements Lister: a sorted snapshot of live sessions.
func (s *Server) Sessions() []Info {
	sessions := s.snapshotSessions()
	out := make([]Info, 0, len(sessions))
	for _, sess := range sessions {
		sent, dropped, recvd, decErrs := sess.Stats()
		out = append(out, Info{
			ID:           sess.ID(),
			Remote:       sess.RemoteAddr(),
			App:          sess.Hello().App,
			UptimeSec:    sess.Uptime().Seconds(),
			QueueDepth:   sess.QueueDepth(),
			Sent:         sent,
			Dropped:      dropped,
			Received:     recvd,
			DecodeErrors: decErrs,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Shutdown stops accepting, drains every session (flushing queued frames
// and sending Bye), and waits for session goroutines up to the context
// deadline; stragglers are then force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	s.janitorStop.Do(func() { close(s.janitorC) })
	if ln != nil {
		_ = ln.Close()
	}
	for _, sess := range s.snapshotSessions() {
		// a drained session is invited back: the fleet will re-place it
		sess.DrainRetry("server shutdown", uint32(s.cfg.RetryAfter.Milliseconds()))
	}

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, sess := range s.snapshotSessions() {
			sess.Close(ctx.Err())
		}
		<-done
		return ctx.Err()
	}
}

// ErrAborted is the cause sessions observe when their server crashes.
var ErrAborted = errors.New("session: server aborted")

// Abort kills the server the way a process crash would: the listener
// closes and every session dies immediately — no drain, no Bye, queued
// frames abandoned. Clients see a severed connection, exactly as they
// would from a dead replica. This is the chaos hook behind the
// replica-crash fault scenario (internal/faults); graceful teardown is
// Shutdown.
func (s *Server) Abort(cause error) {
	if cause == nil {
		cause = ErrAborted
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	s.janitorStop.Do(func() { close(s.janitorC) })
	if ln != nil {
		_ = ln.Close()
	}
	for _, sess := range s.snapshotSessions() {
		sess.Close(cause)
	}
	s.wg.Wait()
}
