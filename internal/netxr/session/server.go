package session

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"illixr/internal/config"
	"illixr/internal/netxr/binlog"
	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
)

// Config tunes the server. The zero value is usable; unset fields take
// the defaults of config.DefaultNet().
type Config struct {
	// MaxSessions caps concurrent sessions; excess connects are refused
	// with a Bye. 0 = default.
	MaxSessions int
	// QueueLen bounds each session's reliable send queue. 0 = default.
	QueueLen int
	// IdleTimeout closes sessions that stop sending. 0 = default,
	// negative = disabled.
	IdleTimeout time.Duration
	// HandshakeTimeout bounds the wait for the client Hello.
	HandshakeTimeout time.Duration
	// WriteTimeout bounds each frame write.
	WriteTimeout time.Duration
	// RetryAfter is the reconnect hint attached to capacity refusals: a
	// full server refuses with a Bye telling the client to come back in
	// this long instead of a terminal error. 0 = default (1 s).
	RetryAfter time.Duration
	// Admission, when non-nil, decides every handshake: it issues resume
	// tokens, restores resumed-session state, and refuses admission with
	// Retry-After hints. nil admits every session fresh with the session
	// id as its resume token.
	Admission Admission
	// Capture, when non-nil, records every frame crossing this server —
	// uplink after decode, downlink after the wire write — into one
	// binlog (DESIGN.md §13). The Writer is the single append path, so
	// reader- and writer-goroutine frames serialize in receipt order.
	// The caller that opened the Writer closes it after Shutdown/Abort
	// returns; late records are refused with ErrClosed, never lost
	// silently mid-file.
	Capture *binlog.Writer
	// Metrics receives illixr_netxr_* instruments; nil = uninstrumented.
	Metrics *telemetry.Registry
	// Shards splits the session table into this many independently locked
	// shards keyed by session id, so session teardown, idle reaping and
	// debug snapshots stop serializing on one mutex at kilo-session scale
	// (DESIGN.md §15). Rounded up to a power of two; 0 = default (16).
	Shards int
	// FlushFrames bounds the writer's flush window: the session writer
	// pops up to this many queued frames per wakeup and puts them on the
	// wire in ONE buffered write (writev-style). 1 disables coalescing
	// (every frame is its own write); 0 = default (16). The flush "tick"
	// is queue exhaustion, not a timer — no frame ever waits for a
	// wall-clock window, which keeps the path virtual-time safe and adds
	// zero latency on a quiet session (DESIGN.md §15).
	FlushFrames int
}

// Admission decides handshake outcomes; the fleet coordinator implements
// it (internal/netxr/fleet). Admit runs on the session's reader goroutine
// after the Hello is validated; the returned Welcome's Proto and Session
// fields are overwritten by the transport. Returning an error refuses the
// session — return an *AdmissionError to carry a Retry-After hint onto
// the refusal Bye.
type Admission interface {
	Admit(sessionID uint64, h wire.Hello) (wire.Welcome, error)
}

// AdmissionError is a transient admission refusal: the client should
// reconnect (with its resume token) after RetryAfter.
type AdmissionError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("session: admission refused: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// Unwrap lets errors.Is(err, ErrAdmission) hold.
func (e *AdmissionError) Unwrap() error { return ErrAdmission }

// Retryable marks the refusal transient when a retry hint is present.
func (e *AdmissionError) Retryable() bool { return e.RetryAfter > 0 }

func (c Config) withDefaults() Config {
	d := config.DefaultNet()
	if c.MaxSessions == 0 {
		c.MaxSessions = d.MaxSessions
	}
	if c.QueueLen == 0 {
		c.QueueLen = d.QueueLen
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = time.Duration(d.IdleTimeoutSec * float64(time.Second))
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.Shards == 0 {
		c.Shards = defaultShards
	}
	c.Shards = ceilPow2(c.Shards)
	if c.FlushFrames == 0 {
		c.FlushFrames = defaultFlushFrames
	}
	if c.FlushFrames < 1 {
		c.FlushFrames = 1
	}
	return c
}

const (
	// defaultShards is the session-table shard count: small enough to be
	// free at 8 sessions, wide enough that a kilo-session churn storm
	// spreads teardown and janitor sweeps across 16 locks.
	defaultShards = 16
	// defaultFlushFrames is the writer's flush window.
	defaultFlushFrames = 16
	// maxShards bounds a hostile config.
	maxShards = 1 << 10
)

// ceilPow2 rounds n up to the next power of two in [1, maxShards].
func ceilPow2(n int) int {
	if n < 1 {
		return 1
	}
	if n > maxShards {
		return maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Handler reacts to session lifecycle events. SessionFrame runs on the
// session's reader goroutine; returning an error terminates the session
// (the supervisor owning the server may then restart its pipeline).
type Handler interface {
	// SessionStart runs after a successful handshake.
	SessionStart(s *Session) error
	// SessionFrame receives every decoded non-control frame.
	SessionFrame(s *Session, f wire.Frame) error
	// SessionEnd runs exactly once when the session terminates; err is
	// nil for a clean close.
	SessionEnd(s *Session, err error)
}

// sessionShard is one lock's worth of the session table.
type sessionShard struct {
	mu       sync.Mutex
	sessions map[uint64]*Session
}

// Server accepts connections and runs one Session per client. The
// session table is sharded (Config.Shards) so teardown, idle reaping
// and snapshots contend per shard, not fleet-wide; admission serializes
// only on the short lifecycle lock that orders registration against
// Shutdown/Abort.
type Server struct {
	cfg     Config
	handler Handler
	m       *metrics

	// lifeMu orders the closed flag, wg.Add, and shard registration
	// against Shutdown/Abort: a session is either swept by the teardown
	// snapshot or refused by the closed check, never neither. Held only
	// for those few statements.
	lifeMu sync.Mutex
	closed bool
	ln     net.Listener

	shards     []sessionShard
	shardMask  uint64
	nextID     atomic.Uint64
	active     atomic.Int64
	contention atomic.Uint64

	wg          sync.WaitGroup
	janitorC    chan struct{}
	janitor     sync.Once
	janitorStop sync.Once
}

// NewServer builds a server with the given handler.
func NewServer(cfg Config, h Handler) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		handler:  h,
		janitorC: make(chan struct{}),
	}
	s.shards = make([]sessionShard, s.cfg.Shards)
	for i := range s.shards {
		s.shards[i].sessions = map[uint64]*Session{}
	}
	s.shardMask = uint64(s.cfg.Shards - 1)
	s.m = newMetrics(s.cfg.Metrics)
	return s
}

// shard returns the shard owning a session id.
func (s *Server) shard(id uint64) *sessionShard { return &s.shards[id&s.shardMask] }

// lockShard takes a shard's lock, counting the contended acquisitions —
// the observable the scale bench uses to show sharding actually spread
// the load (illixr_netxr_shard_contention_total).
func (s *Server) lockShard(sh *sessionShard) {
	if sh.mu.TryLock() {
		return
	}
	s.contention.Add(1)
	s.m.shardContention.Inc()
	sh.mu.Lock()
}

// ShardContention returns the cumulative count of contended shard-lock
// acquisitions.
func (s *Server) ShardContention() uint64 { return s.contention.Load() }

// Serve accepts on ln until Shutdown (or a listener error). It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.lifeMu.Lock()
	if s.closed {
		s.lifeMu.Unlock()
		return ErrClosed
	}
	s.ln = ln
	s.lifeMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.lifeMu.Lock()
			closed := s.closed
			s.lifeMu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.HandleConn(conn)
	}
}

// HandleConn adopts an established connection (Serve uses it; tests feed
// net.Pipe ends directly). Returns nil if the server is full or closed —
// the conn is then refused and closed.
func (s *Server) HandleConn(conn net.Conn) *Session {
	s.startJanitor()
	s.lifeMu.Lock()
	if s.closed || int(s.active.Load()) >= s.cfg.MaxSessions {
		full := !s.closed
		s.lifeMu.Unlock()
		if full {
			// best-effort refusal so the client sees why; the Retry-After
			// hint makes it an admission-control push-back rather than a
			// hard error — the client backs off and redials. Written off
			// the accept path because synchronous transports (net.Pipe)
			// block the write until the peer reads.
			retryMs := uint32(s.cfg.RetryAfter.Milliseconds())
			s.m.refused.Inc()
			go func() {
				w := wire.NewWriter(conn)
				_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
				_ = w.WriteFrame(wire.Frame{Type: wire.TypeBye,
					Payload: wire.AppendBye(nil, wire.Bye{Reason: "server full", RetryAfterMs: retryMs})})
				_ = conn.Close()
			}()
		} else {
			_ = conn.Close()
		}
		return nil
	}
	id := s.nextID.Add(1)
	sess := &Session{id: id, conn: conn, srv: s, created: time.Now()}
	sess.cond = sync.NewCond(&sess.mu)
	sess.slots = map[wire.Type]wire.Frame{}
	// Register under lifeMu: admission must be ordered against the closed
	// check so a racing Abort/Shutdown either sees this session in its
	// sweep or refused it — and wg.Add must not race a wg.Wait going 0→1
	// (undefined per sync.WaitGroup). MaxSessions stays exact because
	// every admission serializes here; only the per-session hot paths
	// (teardown, acks, reaping) moved to the shard locks.
	sh := s.shard(id)
	s.lockShard(sh)
	sh.sessions[id] = sess
	sh.mu.Unlock()
	active := s.active.Add(1)
	s.wg.Add(1)
	s.lifeMu.Unlock()

	s.m.sessionsTotal.Inc()
	s.m.sessionsActive.Set(float64(active))

	go s.run(sess)
	return sess
}

// run owns one session's lifecycle: spawn the writer, drive the reader,
// tear down, notify the handler, unregister.
func (s *Server) run(sess *Session) {
	defer s.wg.Done()
	writerDone := make(chan struct{})
	go sess.writeLoop(writerDone)

	err := sess.readLoop()
	if err != nil {
		// terminal error: flush what's queued and tell the peer why —
		// every write is deadline-bounded, so a stalled peer cannot pin
		// the teardown. Admission refusals carry their Retry-After hint
		// onto the Bye so a refused client knows to come back.
		var ae *AdmissionError
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			sess.DrainRetry(err.Error(), uint32(ae.RetryAfter.Milliseconds()))
		} else {
			sess.Drain(err.Error())
		}
	} else {
		// clean end-of-stream: flush what's queued, then close
		sess.Drain("eof")
	}
	<-writerDone
	sess.Close(err) // no-op if the writer already closed it

	sh := s.shard(sess.id)
	s.lockShard(sh)
	delete(sh.sessions, sess.id)
	sh.mu.Unlock()
	active := s.active.Add(-1)
	s.m.sessionsActive.Set(float64(active))

	s.handler.SessionEnd(sess, err)
}

// startJanitor launches the idle reaper on first use.
func (s *Server) startJanitor() {
	if s.cfg.IdleTimeout <= 0 {
		return
	}
	s.janitor.Do(func() {
		tick := s.cfg.IdleTimeout / 4
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		go func() {
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-s.janitorC:
					return
				case <-t.C:
					s.reapIdle()
				}
			}
		}()
	})
}

// reapIdle sweeps shard by shard: each shard's lock is held only while
// snapshotting that shard, so a kilo-session reap never stalls admission
// or teardown on the other shards.
func (s *Server) reapIdle() {
	cutoff := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
	var scratch []*Session
	for i := range s.shards {
		sh := &s.shards[i]
		s.lockShard(sh)
		scratch = scratch[:0]
		for _, sess := range sh.sessions {
			scratch = append(scratch, sess)
		}
		sh.mu.Unlock()
		for _, sess := range scratch {
			if last := sess.lastRecv.Load(); last > 0 && last < cutoff {
				sess.Close(fmt.Errorf("%w after %s", ErrIdleTimeout, s.cfg.IdleTimeout))
			}
		}
	}
}

func (s *Server) snapshotSessions() []*Session {
	out := make([]*Session, 0, s.active.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		s.lockShard(sh)
		for _, sess := range sh.sessions {
			out = append(out, sess)
		}
		sh.mu.Unlock()
	}
	return out
}

// Len returns the number of live sessions.
func (s *Server) Len() int { return int(s.active.Load()) }

// Sessions implements Lister: a sorted snapshot of live sessions.
func (s *Server) Sessions() []Info {
	sessions := s.snapshotSessions()
	out := make([]Info, 0, len(sessions))
	for _, sess := range sessions {
		sent, dropped, recvd, decErrs := sess.Stats()
		out = append(out, Info{
			ID:           sess.ID(),
			Remote:       sess.RemoteAddr(),
			App:          sess.Hello().App,
			UptimeSec:    sess.Uptime().Seconds(),
			QueueDepth:   sess.QueueDepth(),
			Sent:         sent,
			Dropped:      dropped,
			Received:     recvd,
			DecodeErrors: decErrs,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Shutdown stops accepting, drains every session (flushing queued frames
// and sending Bye), and waits for session goroutines up to the context
// deadline; stragglers are then force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lifeMu.Lock()
	if s.closed {
		s.lifeMu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.lifeMu.Unlock()
	s.janitorStop.Do(func() { close(s.janitorC) })
	if ln != nil {
		_ = ln.Close()
	}
	for _, sess := range s.snapshotSessions() {
		// a drained session is invited back: the fleet will re-place it
		sess.DrainRetry("server shutdown", uint32(s.cfg.RetryAfter.Milliseconds()))
	}

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, sess := range s.snapshotSessions() {
			sess.Close(ctx.Err())
		}
		<-done
		return ctx.Err()
	}
}

// ErrAborted is the cause sessions observe when their server crashes.
var ErrAborted = errors.New("session: server aborted")

// Abort kills the server the way a process crash would: the listener
// closes and every session dies immediately — no drain, no Bye, queued
// frames abandoned. Clients see a severed connection, exactly as they
// would from a dead replica. This is the chaos hook behind the
// replica-crash fault scenario (internal/faults); graceful teardown is
// Shutdown.
func (s *Server) Abort(cause error) {
	if cause == nil {
		cause = ErrAborted
	}
	s.lifeMu.Lock()
	if s.closed {
		s.lifeMu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	s.lifeMu.Unlock()
	s.janitorStop.Do(func() { close(s.janitorC) })
	if ln != nil {
		_ = ln.Close()
	}
	for _, sess := range s.snapshotSessions() {
		sess.Close(cause)
	}
	s.wg.Wait()
}
