package session

import (
	"context"
	"net"
	"testing"

	"illixr/internal/netxr/wire"
	"illixr/internal/parallel"
	"illixr/internal/qos"
	"illixr/internal/sensors"
	"illixr/internal/telemetry"
)

// TestBatchingHandlerDefersAndDelivers runs two sessions through a
// BatchingHandler: camera frames are deferred until a flush, IMU frames
// pass through inline, per-session frame order survives batching, and
// SessionEnd flushes whatever is still pending.
func TestBatchingHandlerDefersAndDelivers(t *testing.T) {
	reg := telemetry.NewRegistry()
	inner := newCollect()
	batcher := qos.NewBatcher(parallel.New(2))
	bh := &BatchingHandler{
		Inner:   inner,
		Batcher: batcher,
		Types:   map[wire.Type]string{wire.TypeCamera: "imgproc"},
	}
	bh.Instrument(reg)
	srv := NewServer(Config{Metrics: reg}, bh)
	defer srv.Shutdown(context.Background())

	type client struct {
		conn net.Conn
		w    *wire.Writer
	}
	var clients []client
	for i := 0; i < 2; i++ {
		cc, sc := net.Pipe()
		defer cc.Close()
		if srv.HandleConn(sc) == nil {
			t.Fatal("conn refused")
		}
		_, w, welcome := clientHandshake(t, cc)
		if welcome.Session == 0 {
			t.Fatalf("client %d: welcome %+v", i, welcome)
		}
		clients = append(clients, client{cc, w})
	}

	// interleave: camera (batched) then IMU (inline) from both sessions
	cam := wire.AppendCamera(nil, sensors.CameraFrame{T: 0.1})
	imu := wire.AppendIMU(nil, sensors.IMUSample{T: 0.2})
	for _, c := range clients {
		if err := c.w.WriteFrame(wire.Frame{Type: wire.TypeCamera, Payload: cam}); err != nil {
			t.Fatal(err)
		}
		if err := c.w.WriteFrame(wire.Frame{Type: wire.TypeIMU, Payload: imu}); err != nil {
			t.Fatal(err)
		}
	}

	// IMU frames arrive inline; the camera frames stay parked in the
	// batcher until a flush
	waitFor(t, func() bool { return inner.frameCount() == 2 })
	inner.mu.Lock()
	for _, f := range inner.frames {
		if f.Type != wire.TypeIMU {
			t.Fatalf("pre-flush frame type %v, want only IMU", f.Type)
		}
	}
	inner.mu.Unlock()
	if got := batcher.Pending(); got != 2 {
		t.Fatalf("pending batched frames = %d, want 2", got)
	}

	if n := batcher.Flush(); n != 2 {
		t.Fatalf("flush ran %d items, want 2", n)
	}
	waitFor(t, func() bool { return inner.frameCount() == 4 })
	inner.mu.Lock()
	cams := 0
	for _, f := range inner.frames {
		if f.Type == wire.TypeCamera {
			cams++
			if fr, err := wire.DecodeCamera(f.Payload); err != nil || fr.T != 0.1 {
				t.Fatalf("camera payload corrupted after deferral: %+v err=%v", fr, err)
			}
		}
	}
	inner.mu.Unlock()
	if cams != 2 {
		t.Fatalf("delivered %d camera frames, want 2", cams)
	}

	// frames parked at disconnect are flushed by SessionEnd, not lost
	if err := clients[0].w.WriteFrame(wire.Frame{Type: wire.TypeCamera, Payload: cam}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return batcher.Pending() == 1 })
	bye := wire.AppendBye(nil, wire.Bye{})
	if err := clients[0].w.WriteFrame(wire.Frame{Type: wire.TypeBye, Payload: bye}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return inner.endedCount() == 1 })
	if got := inner.frameCount(); got != 5 {
		t.Fatalf("frames after SessionEnd flush = %d, want 5", got)
	}
	if len(bh.DeferredErrors()) != 0 {
		t.Fatalf("deferred errors: %v", bh.DeferredErrors())
	}
	if v := reg.Snapshot().Counters["illixr_qos_batch_frames_total"]; v != 3 {
		t.Fatalf("batch_frames_total = %d, want 3", v)
	}
}
