package session

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
)

// TestCoalesceOrderingAcrossFlushSizes drives a session through flush
// windows of 1 (coalescing disabled), 4, and 64 with the reliable and
// latest-wins producers racing on separate goroutines (run under -race
// by make check). The batched writer must preserve exactly the
// per-frame path's contract:
//   - reliable frames arrive in FIFO send order, none lost;
//   - latest-wins frames arrive in strictly increasing freshness
//     (a newer pose displaces an unsent older one, never reorders);
//   - delivered + displaced == sent, so displacement accounting holds.
func TestCoalesceOrderingAcrossFlushSizes(t *testing.T) {
	for _, flush := range []int{1, 4, 64} {
		flush := flush
		t.Run(fmt.Sprintf("flush=%d", flush), func(t *testing.T) {
			const reliableN = 200
			const poseN = 300

			h := newCollect()
			srv := NewServer(Config{
				FlushFrames: flush,
				QueueLen:    reliableN + 8,
				Metrics:     telemetry.NewRegistry(),
			}, h)
			defer srv.Shutdown(context.Background())

			client, server := net.Pipe()
			defer client.Close()
			sess := srv.HandleConn(server)
			if sess == nil {
				t.Fatal("conn refused")
			}
			r, _, _ := clientHandshake(t, client)

			// client side: drain everything until the Bye, recording the
			// order of each class
			var (
				relSeqs  []uint32
				poseSeqs []uint32
				readErr  error
				readDone = make(chan struct{})
			)
			go func() {
				defer close(readDone)
				for {
					f, err := r.ReadFrame()
					if err != nil {
						readErr = err
						return
					}
					switch f.Type {
					case wire.TypeQoE:
						relSeqs = append(relSeqs, binary.LittleEndian.Uint32(f.Payload))
					case wire.TypePose:
						poseSeqs = append(poseSeqs, binary.LittleEndian.Uint32(f.Payload))
					case wire.TypeBye:
						return
					}
				}
			}()

			// server side: two producers race into the same session
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				buf := make([]byte, 4)
				for i := 0; i < reliableN; i++ {
					binary.LittleEndian.PutUint32(buf, uint32(i))
					for {
						err := sess.Send(wire.Frame{Type: wire.TypeQoE, Payload: buf}, Reliable)
						if err == nil {
							break
						}
						if !IsRetryable(err) {
							t.Errorf("reliable send %d: %v", i, err)
							return
						}
						time.Sleep(100 * time.Microsecond)
					}
				}
			}()
			go func() {
				defer wg.Done()
				buf := make([]byte, 4)
				for i := 0; i < poseN; i++ {
					binary.LittleEndian.PutUint32(buf, uint32(i))
					if err := sess.Send(wire.Frame{Type: wire.TypePose, Payload: buf}, LatestWins); err != nil {
						t.Errorf("pose send %d: %v", i, err)
						return
					}
				}
			}()
			wg.Wait()
			sess.Drain("test done")
			select {
			case <-readDone:
			case <-time.After(10 * time.Second):
				t.Fatal("client never saw the drain Bye")
			}
			if readErr != nil {
				t.Fatalf("client read: %v", readErr)
			}
			// the writer's counter updates land after the flush the client
			// just observed: wait for full session teardown before reading
			deadline := time.Now().Add(5 * time.Second)
			for h.endedCount() == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if h.endedCount() != 1 {
				t.Fatal("session never tore down after drain")
			}

			// reliable: complete and in FIFO order
			if len(relSeqs) != reliableN {
				t.Fatalf("reliable frames delivered = %d, want %d", len(relSeqs), reliableN)
			}
			for i, seq := range relSeqs {
				if seq != uint32(i) {
					t.Fatalf("reliable frame %d carries seq %d: FIFO order broken", i, seq)
				}
			}
			// latest-wins: strictly increasing freshness, newest delivered
			for i := 1; i < len(poseSeqs); i++ {
				if poseSeqs[i] <= poseSeqs[i-1] {
					t.Fatalf("pose order regressed: %d after %d", poseSeqs[i], poseSeqs[i-1])
				}
			}
			if n := len(poseSeqs); n == 0 || poseSeqs[n-1] != poseN-1 {
				t.Fatalf("newest pose never delivered: got %v tail", poseSeqs)
			}
			// displacement accounting: delivered + displaced == sent
			sent, dropped, _, _ := sess.Stats()
			if int(dropped)+len(poseSeqs) != poseN {
				t.Fatalf("accounting broken: %d delivered + %d displaced != %d sent",
					len(poseSeqs), dropped, poseN)
			}
			// sent counts the handshake Welcome, every delivered frame and
			// the terminal Bye
			wantSent := uint64(1 + reliableN + len(poseSeqs) + 1)
			if sent != wantSent {
				t.Fatalf("sent counter = %d, want %d", sent, wantSent)
			}
		})
	}
}

// TestShardedSessionTable: with a small shard count, sessions spread
// across shards and every table operation — Len, listing, idle fields,
// shutdown sweep — sees all of them.
func TestShardedSessionTable(t *testing.T) {
	const n = 32
	h := newCollect()
	srv := NewServer(Config{Shards: 4, MaxSessions: n, Metrics: telemetry.NewRegistry()}, h)

	clients := make([]net.Conn, 0, n)
	for i := 0; i < n; i++ {
		client, server := net.Pipe()
		clients = append(clients, client)
		if srv.HandleConn(server) == nil {
			t.Fatalf("conn %d refused", i)
		}
		r, _, _ := clientHandshake(t, client) // synchronous: session is live
		go func() {                           // keep the pipe drained
			for {
				if _, err := r.ReadFrame(); err != nil {
					return
				}
			}
		}()
	}
	if srv.Len() != n {
		t.Fatalf("Len() = %d, want %d", srv.Len(), n)
	}

	// every shard owns some sessions (ids are sequential, shards keyed
	// by id&mask, so 32 ids over 4 shards must hit all of them)
	occupied := 0
	for i := range srv.shards {
		srv.shards[i].mu.Lock()
		if len(srv.shards[i].sessions) > 0 {
			occupied++
		}
		srv.shards[i].mu.Unlock()
	}
	if occupied != 4 {
		t.Fatalf("%d of 4 shards occupied, want all", occupied)
	}

	// the 33rd connect is refused: MaxSessions stays exact under sharding
	extraC, extraS := net.Pipe()
	defer extraC.Close()
	if srv.HandleConn(extraS) != nil {
		t.Fatal("session over MaxSessions admitted")
	}

	infos := srv.Sessions()
	if len(infos) != n {
		t.Fatalf("Sessions() lists %d, want %d", len(infos), n)
	}
	for i := 1; i < len(infos); i++ {
		if infos[i].ID <= infos[i-1].ID {
			t.Fatal("Sessions() not sorted by id")
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if srv.Len() != 0 {
		t.Fatalf("Len() after shutdown = %d, want 0", srv.Len())
	}
	if h.endedCount() != n {
		t.Fatalf("SessionEnd fired %d times, want %d", h.endedCount(), n)
	}
	for _, c := range clients {
		_ = c.Close()
	}
	_ = srv.ShardContention() // accessor is wired
}
