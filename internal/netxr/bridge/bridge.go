// Package bridge adapts netxr streams into the local switchboard on both
// ends of the pipeline split, so internal/core components run unmodified
// whether their peers are in-process or across the network (DESIGN.md §9).
//
// The split point is the switchboard boundary between the sensor front
// half and the perception back half: the client runs the sensor sources
// and the display path, the server hosts the IMU integrator (and
// optionally the MSCKF VIO). Uplink carries IMU samples and camera
// frames; downlink carries fast poses. Trace refs ride in the frame
// headers, so a pose's causal lineage walks back across the wire to the
// IMU sample that produced it — the client and server span collectors
// allocate from disjoint id ranges (SpanCollector.SetIDBase) to keep the
// merged trace consistent.
package bridge

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"illixr/internal/core"
	"illixr/internal/faults"
	"illixr/internal/integrator"
	"illixr/internal/mathx"
	"illixr/internal/netxr/binlog"
	"illixr/internal/netxr/session"
	"illixr/internal/netxr/wire"
	"illixr/internal/runtime"
	"illixr/internal/sensors"
	"illixr/internal/telemetry"
	"illixr/internal/telemetry/stitch"
	"illixr/internal/vio"
)

// CompNetUp and CompNetDown name the wire-crossing trace stages: a span
// of either name marks the hop between the client and server collectors.
const (
	CompNetUp   = "net_uplink"
	CompNetDown = "net_downlink"
)

// serverIDBase spreads per-session span-id ranges: session N allocates
// ids from N<<40, disjoint from the client's low range and from every
// other session for the first ~10^12 spans each.
func serverIDBase(sessionID uint64) uint64 { return sessionID << 40 }

// ---------------------------------------------------------------------------
// Server side: Pipeline runs one perception back half per session.

// Pipeline implements session.Handler: per connected client it builds a
// private runtime (switchboard + phonebook), loads the IMU integrator —
// and optionally the VIO — under supervisors (PR1 semantics: an injected
// panic restarts the plugin, the session survives), republishes uplink
// frames onto the local topics, and forwards fast poses back downstream
// with latest-wins semantics.
type Pipeline struct {
	// Metrics is shared across sessions (the illixr_netxr_* registry);
	// nil runs uninstrumented.
	Metrics *telemetry.Registry
	// SpanCap bounds each per-session collector (0 = default).
	SpanCap int
	// Init supplies the integrator's initial state for a session; nil
	// starts at the origin (the client then interprets poses relative to
	// its own starting pose).
	Init func(h wire.Hello) integrator.State
	// Cam supplies the camera model when VIO is true.
	Cam func(h wire.Hello) sensors.CameraModel
	// VIO additionally hosts the MSCKF on the uplinked camera frames.
	VIO bool
	// MaxRestarts is the per-plugin supervisor restart budget (0 = default).
	MaxRestarts int
	// Inject installs a fault injector into every session's phonebook
	// (PR1 integration: scheduled plugin panics exercise the per-session
	// supervisors while the session itself stays connected).
	Inject *faults.Injector
	// RetainTracers keeps up to this many ended sessions' span
	// collectors so Dumps (the /spans federation source and -trace-out)
	// still covers sessions that disconnected before the export
	// (0 = drop tracers with their session).
	RetainTracers int

	mu       sync.Mutex
	states   map[uint64]*pipeState
	retained []*telemetry.SpanCollector
}

type pipeState struct {
	loader    *runtime.Loader
	tracer    *telemetry.SpanCollector
	poseSub   *runtime.Subscription
	fwdDone   chan struct{}
	qoe       *telemetry.Histogram
	sendRetry *telemetry.Counter
}

// SessionStart implements session.Handler.
func (p *Pipeline) SessionStart(s *session.Session) error {
	loader := runtime.NewLoader()
	ctx := loader.Context()
	tracer := telemetry.NewSpanCollector(p.SpanCap)
	tracer.SetIDBase(serverIDBase(s.ID()))
	_ = ctx.Phonebook.Register(telemetry.TracerService, tracer)
	if p.Metrics != nil {
		_ = ctx.Phonebook.Register(telemetry.RegistryService, p.Metrics)
	}
	if p.Inject != nil {
		_ = ctx.Phonebook.Register(faults.InjectorService, p.Inject)
	}

	var init integrator.State
	if p.Init != nil {
		init = p.Init(s.Hello())
	}
	opts := runtime.SupervisorOptions{MaxRestarts: p.MaxRestarts, Seed: int64(s.ID())}
	sup := runtime.NewSupervisor("integrator.rk4", func() runtime.Plugin {
		return &core.IntegratorPlugin{Initial: init}
	}, opts)
	if err := loader.Load(sup); err != nil {
		_ = loader.Shutdown()
		return fmt.Errorf("bridge: session %d: %w", s.ID(), err)
	}
	if p.VIO {
		if p.Cam == nil {
			_ = loader.Shutdown()
			return errors.New("bridge: VIO requires a Cam model source")
		}
		cam := p.Cam(s.Hello())
		vioSup := runtime.NewSupervisor("vio.msckf", func() runtime.Plugin {
			return &core.VIOPlugin{Params: vio.DefaultParams(), Cam: &cam, Init: &init}
		}, opts)
		if err := loader.Load(vioSup); err != nil {
			_ = loader.Shutdown()
			return fmt.Errorf("bridge: session %d: %w", s.ID(), err)
		}
	}

	st := &pipeState{
		loader:    loader,
		tracer:    tracer,
		poseSub:   ctx.Switchboard.GetTopic(runtime.TopicFastPose).Subscribe(1024),
		fwdDone:   make(chan struct{}),
		qoe:       p.Metrics.Histogram(telemetry.MetricName("netxr", "qoe_mtp_ms")),
		sendRetry: p.Metrics.Counter(telemetry.MetricName("netxr", "bridge_send_retry_total")),
	}
	p.mu.Lock()
	if p.states == nil {
		p.states = map[uint64]*pipeState{}
	}
	p.states[s.ID()] = st
	p.mu.Unlock()

	// downlink forwarder: every fast pose goes back latest-wins — if the
	// link is slower than the IMU rate, unsent stale poses are displaced,
	// never queued.
	go func() {
		defer close(st.fwdDone)
		var buf []byte
		for ev := range st.poseSub.C {
			mp, ok := ev.Value.(mathx.Pose)
			if !ok {
				continue
			}
			ref := st.tracer.Emit(CompNetDown, ev.Trace.Trace, ev.T, ev.T, ev.Trace.Span)
			buf = wire.AppendPose(buf[:0], wire.Pose{T: ev.T, Pose: mp})
			err := s.Send(wire.Frame{Type: wire.TypePose, Trace: ref, Payload: buf}, session.LatestWins)
			switch {
			case err == nil:
			case errors.Is(err, session.ErrClosed):
				return
			case session.IsRetryable(err):
				// transient pushback (session.BackpressureError): the next
				// pose supersedes this one anyway, so account for it and
				// keep forwarding instead of killing the session.
				st.sendRetry.Inc()
			default:
				return
			}
		}
	}()
	return nil
}

// SessionFrame implements session.Handler: uplink frames are decoded and
// republished onto the session's private switchboard with a net_uplink
// span bridging the remote lineage.
func (p *Pipeline) SessionFrame(s *session.Session, f wire.Frame) error {
	st := p.state(s.ID())
	if st == nil {
		return fmt.Errorf("bridge: session %d: frame before start", s.ID())
	}
	ctx := st.loader.Context()
	switch f.Type {
	case wire.TypeIMU:
		sample, err := wire.DecodeIMU(f.Payload)
		if err != nil {
			return fmt.Errorf("bridge: session %d: imu: %w", s.ID(), err)
		}
		ref := st.tracer.Emit(CompNetUp, f.Trace.Trace, sample.T, sample.T, f.Trace.Span)
		ctx.Switchboard.GetTopic(runtime.TopicIMU).Publish(runtime.Event{T: sample.T, Value: sample, Trace: ref})
	case wire.TypeCamera:
		frame, err := wire.DecodeCamera(f.Payload)
		if err != nil {
			return fmt.Errorf("bridge: session %d: camera: %w", s.ID(), err)
		}
		ref := st.tracer.Emit(CompNetUp, f.Trace.Trace, frame.T, frame.T, f.Trace.Span)
		ctx.Switchboard.GetTopic(runtime.TopicCamera).Publish(runtime.Event{T: frame.T, Value: frame, Trace: ref})
	case wire.TypeQoE:
		q, err := wire.DecodeQoE(f.Payload)
		if err != nil {
			return fmt.Errorf("bridge: session %d: qoe: %w", s.ID(), err)
		}
		st.qoe.Observe((q.MTP.IMUAge + q.MTP.Reproj + q.MTP.Swap) * 1000)
	default:
		// unknown-but-well-framed types are ignored: forward compatibility
	}
	return nil
}

// SessionEnd implements session.Handler.
func (p *Pipeline) SessionEnd(s *session.Session, _ error) {
	p.mu.Lock()
	st := p.states[s.ID()]
	delete(p.states, s.ID())
	if st != nil && p.RetainTracers > 0 {
		p.retained = append(p.retained, st.tracer)
		if len(p.retained) > p.RetainTracers {
			p.retained = p.retained[len(p.retained)-p.RetainTracers:]
		}
	}
	p.mu.Unlock()
	if st == nil {
		return
	}
	st.poseSub.Cancel()
	<-st.fwdDone
	_ = st.loader.Shutdown()
}

// Tracer returns the live session's span collector (nil if unknown) so
// callers can export or inspect the server half of a merged trace.
func (p *Pipeline) Tracer(sessionID uint64) *telemetry.SpanCollector {
	if st := p.state(sessionID); st != nil {
		return st.tracer
	}
	return nil
}

// Dumps merges every session tracer — live ones plus the RetainTracers
// tail of ended ones — into a single node-labelled span dump for
// cross-node stitching (/spans?format=raw federation, -trace-out).
// Per-session id bases are disjoint (serverIDBase), so concatenation
// cannot collide. Empty node defaults to "replica".
func (p *Pipeline) Dumps(node string) []stitch.Dump {
	if node == "" {
		node = "replica"
	}
	p.mu.Lock()
	collectors := make([]*telemetry.SpanCollector, 0, len(p.states)+len(p.retained))
	collectors = append(collectors, p.retained...)
	ids := make([]uint64, 0, len(p.states))
	for id := range p.states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		collectors = append(collectors, p.states[id].tracer)
	}
	p.mu.Unlock()

	d := stitch.Dump{Node: node, Spans: []telemetry.Span{}}
	for _, c := range collectors {
		d.Spans = append(d.Spans, c.Spans()...)
		d.Dropped += c.Dropped()
	}
	return []stitch.Dump{d}
}

// Health returns the supervision states of a live session's plugins.
func (p *Pipeline) Health(sessionID uint64) map[string]runtime.Health {
	if st := p.state(sessionID); st != nil {
		return st.loader.Context().Health.Snapshot()
	}
	return nil
}

func (p *Pipeline) state(id uint64) *pipeState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.states[id]
}

var _ session.Handler = (*Pipeline)(nil)

// ---------------------------------------------------------------------------
// Client side: Client owns the connection; Uplink/Downlink are runtime
// plugins bridging the local switchboard to it.

// Client is the device end of the split: it dials, handshakes, and hands
// out the Uplink/Downlink plugins that splice the connection into a
// local runtime.
type Client struct {
	conn    net.Conn
	r       *wire.Reader
	welcome wire.Welcome
	tracer  *telemetry.SpanCollector
	capture *binlog.Writer
	window  *SendWindow

	wmu sync.Mutex
	w   *wire.Writer

	mu       sync.Mutex
	err      error
	closed   bool
	bye      wire.Bye
	byeSeen  bool
	recvSeq  uint64
	pongs    map[uint64]chan wire.Ping
	lastPose atomic64
}

// RefusedError is returned by Dial when the server answers the Hello
// with a Bye instead of a Welcome. A Retry-After hint on the Bye marks
// the refusal transient: back off and redial (Redialer does this).
type RefusedError struct {
	Bye wire.Bye
}

func (e *RefusedError) Error() string {
	if e.Bye.RetryAfterMs > 0 {
		return fmt.Sprintf("bridge: refused: %s (retry after %dms)", e.Bye.Reason, e.Bye.RetryAfterMs)
	}
	return "bridge: refused: " + e.Bye.Reason
}

// Retryable reports whether the server invited the client back.
func (e *RefusedError) Retryable() bool { return e.Bye.Retryable() }

// atomic64 stores a float64 bit pattern without pulling sync/atomic into
// the struct literal noise.
type atomic64 struct {
	mu sync.Mutex
	v  float64
	ok bool
}

func (a *atomic64) set(v float64) { a.mu.Lock(); a.v, a.ok = v, true; a.mu.Unlock() }
func (a *atomic64) get() (float64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v, a.ok
}

// DialOptions collects the optional collaborators a dialed client can
// carry; the zero value is a plain untraced, untracked client.
type DialOptions struct {
	// Tracer receives the client's spans; may be nil.
	Tracer *telemetry.SpanCollector
	// Capture is a client-side binlog tap; may be nil.
	Capture *binlog.Writer
	// Window, when set, numbers and retains every post-handshake uplink
	// frame (Hello and Bye excluded — the gateway ack checkpoint counts
	// neither) so a resumed session can retransmit the unacked gap.
	Window *SendWindow
}

// Dial performs the client handshake over an established connection. The
// tracer may be nil (untraced client).
func Dial(conn net.Conn, hello wire.Hello, tracer *telemetry.SpanCollector) (*Client, error) {
	return DialWith(conn, hello, DialOptions{Tracer: tracer})
}

// DialCapture is Dial with a client-side binlog tap: every frame this
// client sends (DirUp) or receives (DirDown) — the Hello and Welcome
// included — is recorded through the Writer's single append path
// (DESIGN.md §13). The capture's owner closes it after the client is
// done; cap may be nil.
func DialCapture(conn net.Conn, hello wire.Hello, tracer *telemetry.SpanCollector, cap *binlog.Writer) (*Client, error) {
	return DialWith(conn, hello, DialOptions{Tracer: tracer, Capture: cap})
}

// DialWith is the full-control handshake: Dial/DialCapture are thin
// wrappers over it.
func DialWith(conn net.Conn, hello wire.Hello, opts DialOptions) (*Client, error) {
	hello.Proto = wire.Version
	c := &Client{
		conn:    conn,
		r:       wire.NewReader(conn),
		w:       wire.NewWriter(conn),
		tracer:  opts.Tracer,
		capture: opts.Capture,
		window:  opts.Window,
		pongs:   map[uint64]chan wire.Ping{},
	}
	cap := opts.Capture
	if err := c.write(wire.Frame{Type: wire.TypeHello, Payload: wire.AppendHello(nil, hello)}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("bridge: hello: %w", err)
	}
	f, err := c.r.ReadFrame()
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("bridge: awaiting welcome: %w", err)
	}
	if cap != nil {
		_ = cap.Record(binlog.DirDown, f)
	}
	switch f.Type {
	case wire.TypeWelcome:
		w, derr := wire.DecodeWelcome(f.Payload)
		if derr != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("bridge: welcome: %w", derr)
		}
		c.welcome = w
		return c, nil
	case wire.TypeBye:
		b, _ := wire.DecodeBye(f.Payload)
		_ = conn.Close()
		return nil, &RefusedError{Bye: b}
	default:
		_ = conn.Close()
		return nil, fmt.Errorf("bridge: unexpected %v before welcome", f.Type)
	}
}

// Session returns the server-assigned session id.
func (c *Client) Session() uint64 { return c.welcome.Session }

// Welcome returns the handshake result: the resume token to present on
// reconnect and, on a resumed session, the restored snapshot.
func (c *Client) Welcome() wire.Welcome { return c.welcome }

// RecvSeq returns the number of downlink frames this client has seen —
// the LastSeq a resume Hello should carry.
func (c *Client) RecvSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recvSeq
}

// write serializes frame writes (uplink plugin, pings, QoE share the
// conn) and numbers every tracked frame into the send window. Hello and
// Bye stay untracked: the gateway's ack checkpoint counts neither, so
// tracking them would skew the sequence mapping.
func (c *Client) write(f wire.Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	err := c.w.WriteFrame(f)
	if err == nil {
		if c.capture != nil {
			_ = c.capture.Record(binlog.DirUp, f)
		}
		if c.window != nil && f.Type != wire.TypeHello && f.Type != wire.TypeBye {
			c.window.Push(f)
		}
	}
	return err
}

// writeUntracked is write without the send-window push — the
// retransmission path, where frames already hold sequence numbers.
func (c *Client) writeUntracked(f wire.Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	err := c.w.WriteFrame(f)
	if err == nil && c.capture != nil {
		_ = c.capture.Record(binlog.DirUp, f)
	}
	return err
}

// fail records the first transport error.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil && err != nil {
		c.err = err
	}
	c.mu.Unlock()
}

// Err returns the first transport error observed (nil while healthy).
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// ByeReason returns the reason string of the server's Bye, if one arrived.
func (c *Client) ByeReason() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bye.Reason
}

// Bye returns the server's terminal Bye (and whether one arrived). A
// retryable Bye — nonzero RetryAfterMs — means the server drained the
// session expecting the client to reconnect and resume.
func (c *Client) Bye() (wire.Bye, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bye, c.byeSeen
}

// Close sends a Bye and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	_ = c.write(wire.Frame{Type: wire.TypeBye, Payload: wire.AppendBye(nil, wire.Bye{Reason: "client close"})})
	return c.conn.Close()
}

// SendQoE reports a motion-to-photon sample upstream.
func (c *Client) SendQoE(m telemetry.MTPSample) error {
	q := wire.QoE{Session: c.welcome.Session, MTP: m}
	return c.write(wire.Frame{Type: wire.TypeQoE, Payload: wire.AppendQoE(nil, q)})
}

// Ping round-trips a wire-level probe and returns when the pong arrives
// or the timeout expires. Requires the Downlink plugin to be running.
func (c *Client) Ping(seq uint64, t float64, timeout time.Duration) (wire.Ping, error) {
	ch := make(chan wire.Ping, 1)
	c.mu.Lock()
	c.pongs[seq] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pongs, seq)
		c.mu.Unlock()
	}()
	if err := c.write(wire.Frame{Type: wire.TypePing, Payload: wire.AppendPing(nil, wire.Ping{Seq: seq, T: t})}); err != nil {
		return wire.Ping{}, err
	}
	select {
	case p := <-ch:
		return p, nil
	case <-time.After(timeout):
		return wire.Ping{}, errors.New("bridge: ping timeout")
	}
}

// LastPoseT returns the session time of the latest downlinked pose.
func (c *Client) LastPoseT() (float64, bool) { return c.lastPose.get() }

// Uplink returns the plugin that forwards local IMU and camera events to
// the server, trace refs included. Send failures latch into Err and stop
// the forwarders (the owner decides whether to redial).
func (c *Client) Uplink() runtime.Plugin { return &uplinkPlugin{c: c} }

// Downlink returns the plugin that publishes server poses onto the local
// fast-pose topic (and reprojected frames onto the warped topic).
func (c *Client) Downlink() runtime.Plugin { return &downlinkPlugin{c: c} }

type uplinkPlugin struct {
	c      *Client
	imuSub *runtime.Subscription
	camSub *runtime.Subscription
	done   chan struct{}
}

// Name implements runtime.Plugin.
func (p *uplinkPlugin) Name() string { return "netxr.uplink" }

// Start implements runtime.Plugin.
func (p *uplinkPlugin) Start(ctx *runtime.Context) error {
	p.imuSub = ctx.Switchboard.GetTopic(runtime.TopicIMU).Subscribe(8192)
	p.camSub = ctx.Switchboard.GetTopic(runtime.TopicCamera).Subscribe(256)
	p.done = make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	ctx.Go(p.Name(), func() {
		defer wg.Done()
		var buf []byte
		for ev := range p.imuSub.C {
			s, ok := ev.Value.(sensors.IMUSample)
			if !ok {
				continue
			}
			buf = wire.AppendIMU(buf[:0], s)
			if err := p.c.write(wire.Frame{Type: wire.TypeIMU, Trace: ev.Trace, Payload: buf}); err != nil {
				p.c.fail(fmt.Errorf("uplink imu: %w", err))
				return
			}
		}
	})
	ctx.Go(p.Name(), func() {
		defer wg.Done()
		var buf []byte
		for ev := range p.camSub.C {
			f, ok := ev.Value.(sensors.CameraFrame)
			if !ok {
				continue
			}
			buf = wire.AppendCamera(buf[:0], f)
			if err := p.c.write(wire.Frame{Type: wire.TypeCamera, Trace: ev.Trace, Payload: buf}); err != nil {
				p.c.fail(fmt.Errorf("uplink camera: %w", err))
				return
			}
		}
	})
	go func() { wg.Wait(); close(p.done) }()
	return nil
}

// Stop implements runtime.Plugin.
func (p *uplinkPlugin) Stop() error {
	p.imuSub.Cancel()
	p.camSub.Cancel()
	<-p.done
	return nil
}

type downlinkPlugin struct {
	c    *Client
	done chan struct{}
}

// Name implements runtime.Plugin.
func (p *downlinkPlugin) Name() string { return "netxr.downlink" }

// Start implements runtime.Plugin.
func (p *downlinkPlugin) Start(ctx *runtime.Context) error {
	p.done = make(chan struct{})
	fastTopic := ctx.Switchboard.GetTopic(runtime.TopicFastPose)
	warpTopic := ctx.Switchboard.GetTopic(runtime.TopicWarped)
	c := p.c
	ctx.Go(p.Name(), func() {
		defer close(p.done)
		for {
			f, err := c.r.ReadFrame()
			if err != nil {
				if !c.isClosed() {
					c.fail(fmt.Errorf("downlink: %w", err))
				}
				return
			}
			c.mu.Lock()
			c.recvSeq++
			c.mu.Unlock()
			if c.capture != nil {
				_ = c.capture.Record(binlog.DirDown, f)
			}
			switch f.Type {
			case wire.TypePose:
				pm, derr := wire.DecodePose(f.Payload)
				if derr != nil {
					c.fail(fmt.Errorf("downlink pose: %w", derr))
					return
				}
				// bridge the server's lineage into the local collector: the
				// parent span id lives in the server's id range, disjoint by
				// construction.
				ref := c.tracer.Emit(CompNetDown, f.Trace.Trace, pm.T, pm.T, f.Trace.Span)
				if !ref.Valid() {
					ref = f.Trace
				}
				c.lastPose.set(pm.T)
				fastTopic.Publish(runtime.Event{T: pm.T, Value: pm.Pose, Trace: ref})
			case wire.TypeFrame:
				rf, derr := wire.DecodeReprojFrame(f.Payload)
				if derr != nil {
					c.fail(fmt.Errorf("downlink frame: %w", derr))
					return
				}
				warpTopic.Publish(runtime.Event{T: rf.T, Value: rf, Trace: f.Trace})
			case wire.TypePong:
				pg, derr := wire.DecodePing(f.Payload)
				if derr != nil {
					continue
				}
				c.mu.Lock()
				ch := c.pongs[pg.Seq]
				c.mu.Unlock()
				if ch != nil {
					select {
					case ch <- pg:
					default:
					}
				}
			case wire.TypeBye:
				b, _ := wire.DecodeBye(f.Payload)
				c.mu.Lock()
				c.bye, c.byeSeen = b, true
				c.mu.Unlock()
				return
			}
		}
	})
	return nil
}

// Stop implements runtime.Plugin.
func (p *downlinkPlugin) Stop() error {
	_ = p.c.conn.Close()
	p.c.mu.Lock()
	p.c.closed = true
	p.c.mu.Unlock()
	<-p.done
	return nil
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

var (
	_ runtime.Plugin = (*uplinkPlugin)(nil)
	_ runtime.Plugin = (*downlinkPlugin)(nil)
)
