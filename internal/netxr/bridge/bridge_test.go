package bridge

import (
	"context"
	"testing"
	"time"

	"illixr/internal/core"
	"illixr/internal/faults"
	"illixr/internal/integrator"
	"illixr/internal/mathx"
	"illixr/internal/netxr/netsim"
	"illixr/internal/netxr/session"
	"illixr/internal/netxr/wire"
	"illixr/internal/runtime"
	"illixr/internal/sensors"
	"illixr/internal/telemetry"
)

// offloadRig wires a full client runtime to a full server pipeline over
// an in-memory connection.
type offloadRig struct {
	srv    *session.Server
	pipe   *Pipeline
	client *Client
	loader *runtime.Loader
	player *core.DatasetPlayerPlugin
	tracer *telemetry.SpanCollector
	fastC  *runtime.Subscription
}

func startRig(t *testing.T, pipe *Pipeline, duration float64) *offloadRig {
	t.Helper()
	srv := session.NewServer(session.Config{Metrics: pipe.Metrics}, pipe)

	cConn, sConn := netsim.Pipe()
	if srv.HandleConn(sConn) == nil {
		t.Fatal("conn refused")
	}
	tracer := telemetry.NewSpanCollector(0)
	cl, err := Dial(cConn, wire.Hello{App: "test", IMURateHz: 500, CamRateHz: 15}, tracer)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	dcfg := sensors.DefaultDatasetConfig()
	dcfg.Duration = duration
	ds := sensors.GenerateDataset(dcfg)
	loader := runtime.NewLoader()
	_ = loader.Context().Phonebook.Register(telemetry.TracerService, tracer)
	player := &core.DatasetPlayerPlugin{Dataset: ds}
	fastC := loader.Context().Switchboard.GetTopic(runtime.TopicFastPose).Subscribe(16384)
	for _, p := range []runtime.Plugin{cl.Downlink(), cl.Uplink(), player} {
		if err := loader.Load(p); err != nil {
			t.Fatalf("load %s: %v", p.Name(), err)
		}
	}
	rig := &offloadRig{srv: srv, pipe: pipe, client: cl, loader: loader,
		player: player, tracer: tracer, fastC: fastC}
	t.Cleanup(func() {
		_ = cl.Close()
		_ = loader.Shutdown()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return rig
}

// pumpAndAwaitPose advances playback to t and waits for a downlinked pose.
func (r *offloadRig) pumpAndAwaitPose(t *testing.T, virtualT float64) mathx.Pose {
	t.Helper()
	r.player.PumpUntil(virtualT)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case ev := <-r.fastC.C:
			if pose, ok := ev.Value.(mathx.Pose); ok {
				return pose
			}
		case <-time.After(10 * time.Millisecond):
			if err := r.client.Err(); err != nil {
				t.Fatalf("transport: %v", err)
			}
		}
	}
	t.Fatal("no pose arrived")
	return mathx.Pose{}
}

func TestOffloadEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipe := &Pipeline{
		Metrics: reg,
		Init:    func(wire.Hello) integrator.State { return integrator.State{Rot: mathx.QuatIdentity()} },
	}
	rig := startRig(t, pipe, 2)

	rig.pumpAndAwaitPose(t, 0.5)
	rig.player.PumpUntil(1.0)

	// the client sees poses computed by the server-side integrator; its
	// QoE report lands in the server's registry
	if err := rig.client.SendQoE(telemetry.MTPSample{T: 1, IMUAge: 0.004}); err != nil {
		t.Fatalf("qoe: %v", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	name := telemetry.MetricName("netxr", "qoe_mtp_ms")
	for time.Now().Before(deadline) {
		if h := reg.Histogram(name); h.Count() > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if reg.Histogram(name).Count() == 0 {
		t.Fatal("QoE sample never reached the server registry")
	}

	// wire RTT probe answered in-layer
	if _, err := rig.client.Ping(1, 1.0, 2*time.Second); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

func TestOffloadTraceCrossesWire(t *testing.T) {
	pipe := &Pipeline{Metrics: telemetry.NewRegistry()}
	rig := startRig(t, pipe, 1)

	rig.pumpAndAwaitPose(t, 0.5)

	// server half: net_uplink spans parented on client sensor spans
	serverTr := pipe.Tracer(rig.client.Session())
	if serverTr == nil {
		t.Fatal("no server tracer for session")
	}
	ups := serverTr.Find(CompNetUp)
	if len(ups) == 0 {
		t.Fatal("no net_uplink spans on the server")
	}
	base := telemetry.SpanID(serverIDBase(rig.client.Session()))
	for _, sp := range ups {
		if sp.ID <= base {
			t.Fatalf("server span id %d not above session base %d", sp.ID, base)
		}
		if len(sp.Parents) == 0 {
			t.Fatal("net_uplink span lost its remote parent")
		}
		// the parent is a client-side sensor span: below the server base
		for _, parent := range sp.Parents {
			if parent > base {
				t.Fatalf("uplink parent %d is not a client span", parent)
			}
			if _, ok := rig.tracer.Get(parent); !ok {
				t.Fatalf("uplink parent %d unknown to the client collector", parent)
			}
		}
	}

	// client half: net_downlink spans parented on server integrator spans
	downs := rig.tracer.Find(CompNetDown)
	if len(downs) == 0 {
		t.Fatal("no net_downlink spans on the client")
	}
	found := false
	for _, sp := range downs {
		for _, parent := range sp.Parents {
			if parent > base {
				// resolves in the server collector: the lineage crosses the
				// wire and back
				if psp, ok := serverTr.Get(parent); ok && psp.Name == CompNetDown {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no client downlink span resolved to a server span")
	}
}

func TestOffloadSupervisorRestartKeepsSession(t *testing.T) {
	// schedule one integrator panic at t>=0.2: the per-session supervisor
	// must restart the plugin while the session stays connected
	sched := &faults.Schedule{Windows: []faults.Window{
		{Kind: faults.PluginPanic, Component: "integrator.rk4", Start: 0.2, End: 0.2},
	}}
	pipe := &Pipeline{
		Metrics:     telemetry.NewRegistry(),
		Inject:      faults.NewInjector(sched),
		MaxRestarts: 3,
	}
	rig := startRig(t, pipe, 3)

	rig.pumpAndAwaitPose(t, 0.1)
	// crossing t=0.2 trips the injected panic
	rig.player.PumpUntil(0.5)

	deadline := time.Now().Add(5 * time.Second)
	var restarted bool
	for time.Now().Before(deadline) && !restarted {
		health := pipe.Health(rig.client.Session())
		if h, ok := health["integrator.rk4"]; ok && h == runtime.Healthy && pipe.Inject.Fired() > 0 {
			restarted = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !restarted {
		t.Fatal("integrator never restarted after the injected panic")
	}
	if rig.srv.Len() != 1 {
		t.Fatalf("session count = %d; the session must survive a plugin crash", rig.srv.Len())
	}

	// and poses keep flowing afterwards
	rig.pumpAndAwaitPose(t, 1.0)
}
