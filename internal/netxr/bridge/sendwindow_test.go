package bridge

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"illixr/internal/netxr/session"
	"illixr/internal/netxr/wire"
	"illixr/internal/sensors"
	"illixr/internal/telemetry"
)

func imuFrame(t float64) wire.Frame {
	return wire.Frame{Type: wire.TypeIMU, Payload: wire.AppendIMU(nil, sensors.IMUSample{T: t})}
}

// TestSendWindowResumeMapping exercises the ack→client sequence mapping
// directly: plain gap, truncated gap with permanent loss, and the
// offset carrying across a second resume.
func TestSendWindowResumeMapping(t *testing.T) {
	w := NewSendWindow(8)
	for i := 1; i <= 5; i++ {
		w.Push(imuFrame(float64(i)))
	}
	if w.Head() != 5 || w.Len() != 5 {
		t.Fatalf("head=%d len=%d", w.Head(), w.Len())
	}
	// server acked 2 → retransmit 3,4,5
	frames, lost := w.resume(2)
	if lost != 0 || len(frames) != 3 {
		t.Fatalf("resume(2): %d frames, lost %d", len(frames), lost)
	}
	for i, f := range frames {
		s, err := wire.DecodeIMU(f.Payload)
		if err != nil || s.T != float64(i+3) {
			t.Fatalf("retransmit frame %d = T%.0f err=%v, want T%d", i, s.T, err, i+3)
		}
	}

	// truncation: capacity 2, five pushes → only 4,5 retained
	w = NewSendWindow(2)
	for i := 1; i <= 5; i++ {
		w.Push(imuFrame(float64(i)))
	}
	frames, lost = w.resume(0)
	if lost != 3 || len(frames) != 2 {
		t.Fatalf("truncated resume: %d frames, lost %d (want 2, 3)", len(frames), lost)
	}
	if w.Lost() != 3 {
		t.Fatalf("Lost() = %d", w.Lost())
	}
	// the server now relays those 2 and acks 2 (its own count); with the
	// 3-frame offset that maps to client seq 5 = head → nothing pending
	frames, lost = w.resume(2)
	if lost != 0 || len(frames) != 0 {
		t.Fatalf("post-offset resume: %d frames, lost %d (want 0, 0)", len(frames), lost)
	}
}

// ackAdmission admits every handshake, handing out a fixed resume token
// and acking a configurable uplink seq on resume.
type ackAdmission struct {
	mu      sync.Mutex
	lastAck uint64
	resumes int
}

func (a *ackAdmission) Admit(id uint64, h wire.Hello) (wire.Welcome, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := wire.Welcome{ResumeToken: 77, Resumed: h.ResumeToken != 0}
	if w.Resumed {
		w.LastAckSeq = a.lastAck
		a.resumes++
	}
	return w, nil
}

// TestRedialerRetransmitsGapAfterResume is the end-to-end satellite
// test: a client streams uplink frames through a send window, the
// connection dies, and on the resumed connection the server receives
// exactly the unacked tail [last_ack_seq+1, head], in order.
func TestRedialerRetransmitsGapAfterResume(t *testing.T) {
	adm := &ackAdmission{}
	var mu sync.Mutex
	var got []float64
	h := &funcHandler{onFrame: func(s *session.Session, f wire.Frame) error {
		if f.Type == wire.TypeIMU {
			sample, err := wire.DecodeIMU(f.Payload)
			if err != nil {
				return err
			}
			mu.Lock()
			got = append(got, sample.T)
			mu.Unlock()
		}
		return nil
	}}
	reg := telemetry.NewRegistry()
	srv := session.NewServer(session.Config{Admission: adm, IdleTimeout: -1}, h)
	defer srv.Shutdown(context.Background())

	win := NewSendWindow(64)
	win.Instrument(reg)
	r := &Redialer{
		Dial: func() (net.Conn, error) {
			c, s := net.Pipe()
			if srv.HandleConn(s) == nil {
				_ = c.Close()
				return nil, errors.New("refused")
			}
			return c, nil
		},
		Hello:  wire.Hello{App: "xr"},
		Window: win,
		Sleep:  func(time.Duration) {},
	}

	c1, err := r.Connect()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := c1.write(imuFrame(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 5 })
	_ = c1.Close() // the link dies; the server has acked only 2 of the 5

	adm.mu.Lock()
	adm.lastAck = 2
	adm.mu.Unlock()

	c2, err := r.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Welcome().Resumed {
		t.Fatalf("welcome = %+v, want resumed", c2.Welcome())
	}
	// the redialer retransmitted [3,5] before returning: the server sees
	// the tail again, gap-free and in order
	waitCond(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 8 })
	mu.Lock()
	tail := append([]float64(nil), got[5:]...)
	mu.Unlock()
	for i, want := range []float64{3, 4, 5} {
		if tail[i] != want {
			t.Fatalf("retransmitted tail = %v, want [3 4 5]", tail)
		}
	}
	if v := reg.Snapshot().Counters["illixr_netxr_uplink_retransmit_total"]; v != 3 {
		t.Fatalf("uplink_retransmit_total = %d, want 3", v)
	}

	// new frames on the resumed link keep extending the same window
	if err := c2.write(imuFrame(6)); err != nil {
		t.Fatal(err)
	}
	if win.Head() != 6 {
		t.Fatalf("window head = %d, want 6", win.Head())
	}
}

type funcHandler struct {
	onFrame func(*session.Session, wire.Frame) error
}

func (h *funcHandler) SessionStart(*session.Session) error { return nil }
func (h *funcHandler) SessionFrame(s *session.Session, f wire.Frame) error {
	if h.onFrame != nil {
		return h.onFrame(s, f)
	}
	return nil
}
func (h *funcHandler) SessionEnd(*session.Session, error) {}

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
