package bridge

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"illixr/internal/netxr/session"
	"illixr/internal/netxr/wire"
)

func TestBackoffDeterministicAndBounded(t *testing.T) {
	a, b := NewBackoff(7), NewBackoff(7)
	other := NewBackoff(8)
	var prevBase time.Duration
	diverged := false
	for i := 0; i < 10; i++ {
		da, db := a.Delay(i), b.Delay(i)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da != other.Delay(i) {
			diverged = true
		}
		if da <= 0 || da > 2*time.Second {
			t.Fatalf("attempt %d: delay %v outside (0, cap]", i, da)
		}
		// the un-jittered floor grows monotonically up to the cap
		base := 50 * time.Millisecond << uint(i)
		if base > 2*time.Second {
			base = 2 * time.Second
		}
		if base < prevBase {
			t.Fatal("backoff floor shrank")
		}
		prevBase = base
	}
	if !diverged {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestBackoffNoJitterIsPureExponential(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if got := b.Delay(i); got != w*time.Millisecond {
			t.Fatalf("attempt %d: delay = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

// flakyAdmission refuses the first n handshakes with a Retry-After hint.
type flakyAdmission struct {
	mu      sync.Mutex
	refuse  int
	retry   time.Duration
	helloes []wire.Hello
}

func (a *flakyAdmission) Admit(id uint64, h wire.Hello) (wire.Welcome, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.helloes = append(a.helloes, h)
	if a.refuse > 0 {
		a.refuse--
		return wire.Welcome{}, &session.AdmissionError{Reason: "not yet", RetryAfter: a.retry}
	}
	return wire.Welcome{ResumeToken: 42, Resumed: h.ResumeToken != 0, PoseEpoch: 1}, nil
}

type nopHandler struct{}

func (nopHandler) SessionStart(*session.Session) error             { return nil }
func (nopHandler) SessionFrame(*session.Session, wire.Frame) error { return nil }
func (nopHandler) SessionEnd(*session.Session, error)              {}

func TestRedialerBacksOffThroughRefusals(t *testing.T) {
	adm := &flakyAdmission{refuse: 2, retry: 300 * time.Millisecond}
	srv := session.NewServer(session.Config{Admission: adm, IdleTimeout: -1}, nopHandler{})
	defer srv.Shutdown(context.Background())

	var slept []time.Duration
	r := &Redialer{
		Dial: func() (net.Conn, error) {
			c, s := net.Pipe()
			if srv.HandleConn(s) == nil {
				_ = c.Close()
				return nil, errors.New("refused")
			}
			return c, nil
		},
		Hello:   wire.Hello{App: "xr", Seed: 5},
		Backoff: &Backoff{Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond, Factor: 2},
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	}
	cl, err := r.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if r.Attempts() != 3 {
		t.Fatalf("attempts = %d, want 3", r.Attempts())
	}
	if len(slept) != 2 {
		t.Fatalf("sleeps = %d, want 2", len(slept))
	}
	// the server's 300ms Retry-After hint floors the early backoff delays
	for i, d := range slept {
		if d < 300*time.Millisecond {
			t.Fatalf("sleep %d = %v, below the server's Retry-After floor", i, d)
		}
	}
	if w, ok := r.LastWelcome(); !ok || w.ResumeToken != 42 {
		t.Fatalf("welcome = %+v ok=%v", w, ok)
	}
}

func TestRedialerResumesWithStoredToken(t *testing.T) {
	adm := &flakyAdmission{}
	srv := session.NewServer(session.Config{Admission: adm, IdleTimeout: -1}, nopHandler{})
	defer srv.Shutdown(context.Background())

	r := &Redialer{
		Dial: func() (net.Conn, error) {
			c, s := net.Pipe()
			if srv.HandleConn(s) == nil {
				_ = c.Close()
				return nil, errors.New("refused")
			}
			return c, nil
		},
		Hello: wire.Hello{App: "xr"},
		Sleep: func(time.Duration) {},
	}
	c1, err := r.Connect()
	if err != nil {
		t.Fatal(err)
	}
	_ = c1.Close()

	c2, err := r.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Welcome().Resumed {
		t.Fatalf("second welcome = %+v, want resumed", c2.Welcome())
	}
	adm.mu.Lock()
	defer adm.mu.Unlock()
	if len(adm.helloes) != 2 {
		t.Fatalf("handshakes = %d, want 2", len(adm.helloes))
	}
	if adm.helloes[0].ResumeToken != 0 {
		t.Fatal("first hello carried a token before any welcome")
	}
	if adm.helloes[1].ResumeToken != 42 {
		t.Fatalf("resume hello token = %d, want 42", adm.helloes[1].ResumeToken)
	}
}

func TestRedialerTerminalRefusalFailsFast(t *testing.T) {
	adm := &flakyAdmission{refuse: 100, retry: 0} // no hint: terminal
	srv := session.NewServer(session.Config{Admission: adm, IdleTimeout: -1}, nopHandler{})
	defer srv.Shutdown(context.Background())

	r := &Redialer{
		Dial: func() (net.Conn, error) {
			c, s := net.Pipe()
			if srv.HandleConn(s) == nil {
				_ = c.Close()
				return nil, errors.New("refused")
			}
			return c, nil
		},
		Hello: wire.Hello{App: "xr"},
		Sleep: func(time.Duration) {},
	}
	_, err := r.Connect()
	var re *RefusedError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RefusedError", err)
	}
	if re.Retryable() {
		t.Fatal("hint-less refusal marked retryable")
	}
	if r.Attempts() != 1 {
		t.Fatalf("attempts = %d, want 1 (fail fast)", r.Attempts())
	}
}

func TestRedialerGivesUpAfterMaxAttempts(t *testing.T) {
	r := &Redialer{
		Dial:        func() (net.Conn, error) { return nil, fmt.Errorf("no route") },
		Hello:       wire.Hello{App: "xr"},
		MaxAttempts: 3,
		Sleep:       func(time.Duration) {},
	}
	_, err := r.Connect()
	if !errors.Is(err, ErrGaveUp) {
		t.Fatalf("err = %v, want ErrGaveUp", err)
	}
	if r.Attempts() != 3 {
		t.Fatalf("attempts = %d, want 3", r.Attempts())
	}
}
