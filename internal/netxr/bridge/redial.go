package bridge

import (
	"errors"
	"fmt"
	"net"
	"time"

	"illixr/internal/netxr/binlog"
	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
)

// Backoff is a deterministic jittered exponential backoff policy:
// attempt n waits Base·Factor^n capped at Cap, with a Jitter fraction
// of that delay replaced by a seeded uniform draw. Seeding makes the
// whole reconnect schedule reproducible — the chaos bench replays the
// exact same recovery storm for a given seed — while still decorrelating
// clients from each other (different seeds, different phases).
type Backoff struct {
	// Base is the first delay (0 = 50ms).
	Base time.Duration
	// Cap bounds the grown delay (0 = 2s).
	Cap time.Duration
	// Factor is the per-attempt growth (0 = 2).
	Factor float64
	// Jitter in (0,1] is the fraction of each delay drawn uniformly at
	// random; 0 = default (0.5), negative disables jitter entirely.
	Jitter float64

	state uint64
}

// NewBackoff returns the default policy seeded for deterministic jitter.
func NewBackoff(seed int64) *Backoff {
	return &Backoff{state: uint64(seed)*0x9e3779b97f4a7c15 + 0xd1b54a32d192ed03}
}

func (b *Backoff) defaults() (base, cap time.Duration, factor, jitter float64) {
	base, cap, factor, jitter = b.Base, b.Cap, b.Factor, b.Jitter
	if base == 0 {
		base = 50 * time.Millisecond
	}
	if cap == 0 {
		cap = 2 * time.Second
	}
	if factor == 0 {
		factor = 2
	}
	switch {
	case jitter == 0:
		jitter = 0.5
	case jitter < 0:
		jitter = 0
	case jitter > 1:
		jitter = 1
	}
	return
}

// Delay returns the wait before reconnect attempt n (0-based). Calls
// advance the jitter stream, so a fixed seed yields a fixed schedule.
func (b *Backoff) Delay(attempt int) time.Duration {
	base, cap, factor, jitter := b.defaults()
	d := float64(base)
	for i := 0; i < attempt && d < float64(cap); i++ {
		d *= factor
	}
	if d > float64(cap) {
		d = float64(cap)
	}
	if jitter > 0 {
		// equal-jitter style: keep (1-jitter) of the delay, draw the rest
		u := float64(splitmix64(&b.state)>>11) / float64(1<<53)
		d = d*(1-jitter) + d*jitter*u
	}
	return time.Duration(d)
}

// splitmix64 — the repo-wide deterministic generator.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ErrGaveUp wraps the last failure when a Redialer exhausts MaxAttempts.
var ErrGaveUp = errors.New("bridge: reconnect attempts exhausted")

// Redialer dials (and redials) the split's server side with resume: the
// first Connect performs a fresh handshake; after the session dies —
// drained replica, crashed replica, dropped link — Connect again and it
// presents the stored resume token and last-seen downlink seq, backing
// off between attempts. Refusals carrying a Retry-After hint (fleet
// admission push-back) wait at least that long; non-retryable refusals
// (bad token, protocol error) fail immediately.
type Redialer struct {
	// Dial opens a transport connection (to the gateway or a server).
	// Required.
	Dial func() (net.Conn, error)
	// Hello is the handshake template; resume fields are managed by the
	// redialer itself.
	Hello wire.Hello
	// Tracer seeds each dialed client's span collector; may be nil.
	Tracer *telemetry.SpanCollector
	// Capture records every frame of every dialed client — across
	// resumes — into one client-side binlog; may be nil.
	Capture *binlog.Writer
	// Window, when set, follows the session across reconnects: every
	// dialed client pushes its uplink frames into it, and after a
	// Resumed Welcome the unacked gap [last_ack_seq+1, head] is
	// retransmitted before the client is returned — the server sees a
	// hole-free uplink stream even through a crash+resume (ROADMAP
	// item 1). May be nil (no retransmission, the pre-window behavior).
	Window *SendWindow
	// Backoff paces reconnect attempts; nil = NewBackoff(Hello.Seed).
	Backoff *Backoff
	// MaxAttempts bounds one Connect call (0 = 8).
	MaxAttempts int
	// Sleep is the wait primitive, injectable for tests and virtual-time
	// benches; nil = time.Sleep.
	Sleep func(time.Duration)

	attempts int // total dial attempts across the redialer's life
	last     *Client
	welcome  wire.Welcome
	haveW    bool
}

// Attempts returns the total dial attempts made so far.
func (r *Redialer) Attempts() int { return r.attempts }

// LastWelcome returns the most recent handshake result, if any.
func (r *Redialer) LastWelcome() (wire.Welcome, bool) { return r.welcome, r.haveW }

// Connect establishes (or re-establishes) the session, blocking through
// backoff waits. Not safe for concurrent use — the owner of the client
// drives reconnection from one goroutine.
func (r *Redialer) Connect() (*Client, error) {
	max := r.MaxAttempts
	if max == 0 {
		max = 8
	}
	if r.Backoff == nil {
		r.Backoff = NewBackoff(r.Hello.Seed)
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}

	var lastErr error
	for attempt := 0; attempt < max; attempt++ {
		if attempt > 0 {
			delay := r.Backoff.Delay(attempt - 1)
			// a server Retry-After hint is a floor, not a replacement: the
			// jittered exponential keeps clients decorrelated on top of it.
			if ra := retryAfter(lastErr); ra > delay {
				delay = ra
			}
			sleep(delay)
		}
		r.attempts++
		conn, err := r.Dial()
		if err != nil {
			lastErr = err
			continue
		}
		hello := r.Hello
		if r.haveW {
			hello.ResumeToken = r.welcome.ResumeToken
			if r.last != nil {
				hello.LastSeq = r.last.RecvSeq()
			}
		}
		cl, err := DialWith(conn, hello, DialOptions{
			Tracer: r.Tracer, Capture: r.Capture, Window: r.Window,
		})
		if err == nil {
			if w := cl.Welcome(); w.Resumed && r.Window != nil {
				if _, _, rerr := r.Window.RetransmitTo(cl, w.LastAckSeq); rerr != nil {
					// the fresh link died mid-retransmit: unacked frames stay
					// queued in the window, so the next attempt replays them
					_ = cl.Close()
					lastErr = rerr
					continue
				}
			}
			r.last, r.welcome, r.haveW = cl, cl.Welcome(), true
			return cl, nil
		}
		lastErr = err
		var re *RefusedError
		if errors.As(err, &re) && !re.Retryable() {
			return nil, err // terminal refusal: retrying cannot help
		}
	}
	return nil, fmt.Errorf("%w after %d attempts: %v", ErrGaveUp, max, lastErr)
}

// retryAfter extracts a server Retry-After hint from a dial error.
func retryAfter(err error) time.Duration {
	var re *RefusedError
	if errors.As(err, &re) {
		return time.Duration(re.Bye.RetryAfterMs) * time.Millisecond
	}
	return 0
}
