package bridge

import (
	"sync"

	"illixr/internal/netxr/wire"
	"illixr/internal/recycle"
	"illixr/internal/telemetry"
)

// SendWindow is the client-side uplink retransmission buffer that
// closes the resume gap (ROADMAP item 1): every post-handshake uplink
// frame the client writes is numbered and retained (bounded), and when
// a reconnect comes back with a Resumed Welcome the frames in
// (last_ack_seq, head] are retransmitted so the server sees the uplink
// stream without a hole.
//
// Sequence mapping: the gateway acks its own count of relayed frames,
// which equals the client's count as long as every gap is retransmitted.
// When the bounded window has already evicted frames the ack calls for,
// those frames are permanently lost; `offset` records how many, so all
// later acks still map exactly onto client sequence numbers
// (clientSeq = ackSeq + offset).
//
// A SendWindow outlives any single Client — hand one to a Redialer and
// it follows the session across reconnects. Safe for concurrent use.
type SendWindow struct {
	mu      sync.Mutex
	cap     int
	entries []winEntry
	head    uint64 // client seq of the most recently pushed frame
	offset  uint64 // frames permanently lost to truncation

	retransC *telemetry.Counter
	truncC   *telemetry.Counter
	depthG   *telemetry.Gauge
}

type winEntry struct {
	seq uint64
	f   wire.Frame // payload is an owned recycle.Bytes copy
}

// NewSendWindow returns a window retaining at most capacity unacked
// frames (0 = 1024). At 500 Hz IMU + 15 Hz camera the default covers
// roughly two seconds of uplink — more than the redialer's backoff cap.
func NewSendWindow(capacity int) *SendWindow {
	if capacity <= 0 {
		capacity = 1024
	}
	return &SendWindow{cap: capacity}
}

// Instrument attaches retransmit/truncation counters and a depth gauge.
func (w *SendWindow) Instrument(reg *telemetry.Registry) {
	if w == nil || reg == nil {
		return
	}
	w.retransC = reg.Counter(telemetry.MetricName("netxr", "uplink_retransmit_total"))
	w.truncC = reg.Counter(telemetry.MetricName("netxr", "uplink_window_truncated_total"))
	w.depthG = reg.Gauge(telemetry.MetricName("netxr", "uplink_window_depth"))
}

// Push records one sent frame (payload copied). Called by Client.write
// for every tracked frame after a successful wire write.
func (w *SendWindow) Push(f wire.Frame) {
	w.mu.Lock()
	w.head++
	cp := f
	cp.Payload = recycle.Bytes.Get(len(f.Payload))
	copy(cp.Payload, f.Payload)
	w.entries = append(w.entries, winEntry{seq: w.head, f: cp})
	var truncated int
	if over := len(w.entries) - w.cap; over > 0 {
		for j := 0; j < over; j++ {
			recycle.Bytes.Put(w.entries[j].f.Payload)
		}
		n := copy(w.entries, w.entries[over:])
		for j := n; j < len(w.entries); j++ {
			w.entries[j] = winEntry{}
		}
		w.entries = w.entries[:n]
		truncated = over
	}
	depth := len(w.entries)
	w.mu.Unlock()
	w.truncC.Add(truncated)
	w.depthG.Set(float64(depth))
}

// Head returns the client sequence number of the last pushed frame.
func (w *SendWindow) Head() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.head
}

// Len returns the number of retained (unacked) frames.
func (w *SendWindow) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}

// Lost returns how many frames were evicted before they could be
// retransmitted — permanently lost to the server.
func (w *SendWindow) Lost() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.offset
}

// resume maps a server ack onto client sequence space, drops everything
// the ack covers, accounts frames the window no longer holds as
// permanently lost, and returns the frames to retransmit in order. The
// returned frames alias window-owned payloads: they stay valid until
// the corresponding entries are dropped by a later resume, so callers
// must finish writing them before the next resume (the redialer's
// single-goroutine Connect contract guarantees this).
func (w *SendWindow) resume(lastAckSeq uint64) (frames []wire.Frame, lost uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	acked := lastAckSeq + w.offset // client-seq of the last frame the server has
	// drop the acked prefix (compacting in place so the backing array
	// does not grow without bound across resumes)
	i := 0
	for i < len(w.entries) && w.entries[i].seq <= acked {
		recycle.Bytes.Put(w.entries[i].f.Payload)
		i++
	}
	if i > 0 {
		n := copy(w.entries, w.entries[i:])
		for j := n; j < len(w.entries); j++ {
			w.entries[j] = winEntry{}
		}
		w.entries = w.entries[:n]
	}
	// frames between the ack and our oldest retained entry were evicted:
	// permanently lost, fold them into the offset so future acks map
	if len(w.entries) > 0 && w.entries[0].seq > acked+1 {
		lost = w.entries[0].seq - acked - 1
	} else if len(w.entries) == 0 && w.head > acked {
		lost = w.head - acked
	}
	w.offset += lost
	for _, e := range w.entries {
		frames = append(frames, e.f)
	}
	return frames, lost
}

// RetransmitTo replays the unacked gap [lastAckSeq+1, head] onto a
// freshly resumed client connection. Returns the number of frames
// retransmitted and how many were permanently lost to window
// truncation; a write error leaves the window intact (the frames stay
// queued for the next resume).
func (w *SendWindow) RetransmitTo(c *Client, lastAckSeq uint64) (sent int, lost uint64, err error) {
	frames, lost := w.resume(lastAckSeq)
	for _, f := range frames {
		if err := c.writeUntracked(f); err != nil {
			return sent, lost, err
		}
		sent++
	}
	w.retransC.Add(sent)
	return sent, lost, nil
}
