// Package binlog is the binary session record/replay substrate
// (DESIGN.md §13): an indexed, length-prefixed, CRC-framed, versioned
// capture format for every netxr wire frame crossing a tap point — the
// session layer, the bridge client, or the gateway relay. A recording
// turns any interesting run (fault storm, resume storm, loop-closure
// spike) into a permanent scenario: replayed at 1× it is a bit-exact
// regression input (internal/netxr/replay), replayed at N× fan-out it
// is a load generator stamping fresh session identities onto one
// captured stream.
//
// File layout (all multi-byte integers little-endian):
//
//	offset  size  field
//	0       4     magic "XRBL"
//	4       1     format version (FormatVersion)
//	5       1-5   metadata length, unsigned varint
//	...     m     metadata payload (Meta, wire-codec conventions)
//	...     4     CRC-32 (IEEE) over every preceding header byte
//	---- then zero or more records ----
//	...     1-5   record body length, unsigned varint, <= MaxRecord
//	...     n     record body
//	...     4     CRC-32 (IEEE) over the body (not the length prefix)
//
// Record body:
//
//	offset  size  field
//	0       1     direction (DirUp = client→server, DirDown = server→client)
//	1       1-10  sequence number, unsigned varint (writer-assigned, dense)
//	...     8     wall-receipt time, float64 seconds since capture start
//	...     rest  one raw wire frame (wire.AppendFrame bytes, CRC included)
//
// The wrapped wire frame keeps its own header CRC and causal-trace ref,
// so a recording is decodable with the PR 4 codecs alone and replay
// preserves trace lineage. The outer record CRC exists for torn-write
// recovery: a truncated or corrupted FINAL record (a crash mid-append)
// is detected, counted into illixr_binlog_torn_total, and skipped —
// never a panic, never a silent misparse. Corruption that is not at the
// tail is a typed error: the log cannot be trusted past it.
//
// Ownership rules (who appends, who closes): every binlog has exactly
// one *Writer and the Writer owns the single append path — all tap
// points (session reader goroutine, session writer goroutine, gateway
// relay goroutines) call Record on the same Writer, which assigns the
// sequence number and wall-receipt stamp under one lock, so frames
// serialize into the file in receipt order no matter which goroutine
// carried them. The component that opened the capture (the Capture /
// Record hook owner) closes it after the last tap point has quiesced;
// Close flushes the log and writes the sidecar index.
package binlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
)

// Magic opens every binlog file ("XRBL"); IndexMagic opens the sidecar
// index ("XRBI").
var (
	Magic      = [4]byte{'X', 'R', 'B', 'L'}
	IndexMagic = [4]byte{'X', 'R', 'B', 'I'}
)

// FormatVersion is the capture format this build reads and writes. A
// decoder receiving any other version returns ErrFormatVersion instead
// of misparsing the stream.
const FormatVersion = 1

// MaxRecord bounds one record body: a wire frame (payload <= MaxPayload
// plus framing) and the record envelope. A corrupted length prefix can
// therefore never drive an unbounded allocation.
const MaxRecord = wire.MaxPayload + 1<<12

// Suffix and IndexSuffix are the conventional file extensions.
const (
	Suffix      = ".binlog"
	IndexSuffix = ".idx"
)

// Dir is the direction a captured frame travelled at the tap point.
type Dir uint8

const (
	// DirUp is client→server traffic (Hello, IMU, Camera, QoE, Ping, Bye).
	DirUp Dir = 0
	// DirDown is server→client traffic (Welcome, Pose, Frame, Pong, Bye).
	DirDown Dir = 1
)

func (d Dir) String() string {
	switch d {
	case DirUp:
		return "up"
	case DirDown:
		return "down"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}

// Decode errors. ErrTorn is never returned to callers — torn tails are
// skipped and counted — but it names the condition in accounting.
var (
	ErrMagic         = errors.New("binlog: bad magic")
	ErrFormatVersion = errors.New("binlog: format version mismatch")
	ErrHeader        = errors.New("binlog: corrupt header")
	ErrCorrupt       = errors.New("binlog: corrupt record")
	ErrTooLarge      = errors.New("binlog: record exceeds MaxRecord")
	ErrClosed        = errors.New("binlog: writer closed")
	ErrIndexMismatch = errors.New("binlog: index does not match log")
)

// Meta is the session metadata header of a capture: who was recorded,
// under which seed and rates, and where the tap sat. It rides at the
// front of the log and is echoed into the sidecar index so tools can
// list recordings without reading frame data.
type Meta struct {
	// Session is the transport session id at the tap (0 if unknown at
	// capture-open time, e.g. a client that has not completed handshake).
	Session uint64
	// App is the application label from the Hello.
	App string
	// Seed is the deterministic dataset seed from the Hello.
	Seed int64
	// IMURateHz / CamRateHz are the nominal stream rates from the Hello.
	IMURateHz float64
	CamRateHz float64
	// ResumeToken is the token the recorded session presented (0 = fresh).
	ResumeToken uint64
	// CreatedUnixNano stamps capture start (informational; replay
	// fingerprints never hash it).
	CreatedUnixNano int64
	// Label names the tap point ("session", "client", "gateway", ...).
	Label string
}

// appendMeta encodes m with the wire-codec conventions.
func appendMeta(dst []byte, m Meta) []byte {
	dst = binary.AppendUvarint(dst, m.Session)
	dst = binary.AppendUvarint(dst, uint64(len(m.App)))
	dst = append(dst, m.App...)
	dst = binary.AppendVarint(dst, m.Seed)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.IMURateHz))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.CamRateHz))
	dst = binary.AppendUvarint(dst, m.ResumeToken)
	dst = binary.AppendVarint(dst, m.CreatedUnixNano)
	dst = binary.AppendUvarint(dst, uint64(len(m.Label)))
	return append(dst, m.Label...)
}

// metaDec is a bounds-checked cursor over a metadata payload.
type metaDec struct {
	b   []byte
	off int
	err error
}

func (d *metaDec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrHeader, what, d.off)
	}
}

func (d *metaDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *metaDec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *metaDec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *metaDec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// decodeMeta parses a metadata payload; trailing bytes are an error so
// version-skewed files are refused, not half-parsed.
func decodeMeta(p []byte) (Meta, error) {
	d := &metaDec{b: p}
	m := Meta{
		Session: d.uvarint(),
		App:     d.str(),
		Seed:    d.varint(),
	}
	m.IMURateHz = d.f64()
	m.CamRateHz = d.f64()
	m.ResumeToken = d.uvarint()
	m.CreatedUnixNano = d.varint()
	m.Label = d.str()
	if d.err != nil {
		return m, d.err
	}
	if d.off != len(p) {
		return m, fmt.Errorf("%w: %d trailing metadata bytes", ErrHeader, len(p)-d.off)
	}
	return m, nil
}

// appendHeader encodes the file header (magic, version, metadata, CRC).
func appendHeader(dst []byte, m Meta) []byte {
	start := len(dst)
	dst = append(dst, Magic[:]...)
	dst = append(dst, FormatVersion)
	meta := appendMeta(nil, m)
	dst = binary.AppendUvarint(dst, uint64(len(meta)))
	dst = append(dst, meta...)
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// decodeHeader parses the file header from the front of b, returning
// the metadata and the number of bytes consumed.
func decodeHeader(b []byte) (Meta, int, error) {
	var m Meta
	if len(b) < len(Magic)+1 {
		return m, 0, ErrHeader
	}
	if b[0] != Magic[0] || b[1] != Magic[1] || b[2] != Magic[2] || b[3] != Magic[3] {
		return m, 0, ErrMagic
	}
	if b[4] != FormatVersion {
		return m, 0, fmt.Errorf("%w: got %d want %d", ErrFormatVersion, b[4], FormatVersion)
	}
	n, vlen := binary.Uvarint(b[5:])
	if vlen <= 0 || n > MaxRecord {
		return m, 0, ErrHeader
	}
	total := 5 + vlen + int(n) + 4
	if len(b) < total {
		return m, 0, ErrHeader
	}
	body := b[:total-4]
	want := binary.LittleEndian.Uint32(b[total-4 : total])
	if crc32.ChecksumIEEE(body) != want {
		return m, 0, fmt.Errorf("%w: header CRC mismatch", ErrHeader)
	}
	m, err := decodeMeta(b[5+vlen : total-4])
	if err != nil {
		return m, 0, err
	}
	return m, total, nil
}

// Record is one captured frame: the direction it travelled, the dense
// writer-assigned sequence number, the wall-receipt stamp (seconds
// since capture start), and the decoded wire frame (trace ref intact;
// Frame.Payload aliases the log buffer).
type Record struct {
	Dir   Dir
	Seq   uint64
	Wall  float64
	Frame wire.Frame
}

// appendRecord encodes one record (length prefix, body, CRC) onto dst.
func appendRecord(dst []byte, r Record) []byte {
	// body first, into the tail of dst past a reserved spot? Simpler:
	// encode the body after the varint by building it in place — the
	// length is not known until the frame is encoded, so encode the body
	// into scratch space at the end and splice. To stay allocation-free
	// the caller reuses dst; the double pass below only moves bytes.
	bodyStart := len(dst)
	dst = append(dst, byte(r.Dir))
	dst = binary.AppendUvarint(dst, r.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Wall))
	dst = wire.AppendFrame(dst, r.Frame)
	return spliceRecord(dst, bodyStart)
}

// appendRecordRaw is appendRecord for an already-encoded frame: the raw
// bytes go into the body verbatim, so a pass-through tap (the gateway's
// zero-copy relay) records exactly the bytes it forwards — byte-identical
// to appendRecord of the equivalent decoded frame.
func appendRecordRaw(dst []byte, dir Dir, seq uint64, wall float64, frame []byte) []byte {
	bodyStart := len(dst)
	dst = append(dst, byte(dir))
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(wall))
	dst = append(dst, frame...)
	return spliceRecord(dst, bodyStart)
}

// spliceRecord prefixes the body at dst[bodyStart:] with its varint
// length and appends the body CRC.
func spliceRecord(dst []byte, bodyStart int) []byte {
	bodyLen := len(dst) - bodyStart
	var pfx [binary.MaxVarintLen64]byte
	pn := binary.PutUvarint(pfx[:], uint64(bodyLen))
	dst = append(dst, pfx[:pn]...)                             // grow
	copy(dst[bodyStart+pn:], dst[bodyStart:bodyStart+bodyLen]) // shift body right
	copy(dst[bodyStart:], pfx[:pn])                            // prefix in place
	sum := crc32.ChecksumIEEE(dst[bodyStart+pn : bodyStart+pn+bodyLen])
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// decodeRecord parses one record from the front of b. It returns the
// record and bytes consumed. Errors: ErrTooLarge for a hostile length,
// io-style truncation is reported via errTruncated (the caller decides
// torn-tail vs corrupt), ErrCorrupt for CRC or body-shape failures.
var errTruncated = errors.New("binlog: truncated record")

func decodeRecord(b []byte) (Record, int, error) {
	var r Record
	n, vlen := binary.Uvarint(b)
	if vlen <= 0 {
		return r, 0, errTruncated
	}
	if n > MaxRecord {
		return r, 0, ErrTooLarge
	}
	total := vlen + int(n) + 4
	if len(b) < total {
		return r, 0, errTruncated
	}
	body := b[vlen : vlen+int(n)]
	want := binary.LittleEndian.Uint32(b[vlen+int(n) : total])
	if crc32.ChecksumIEEE(body) != want {
		return r, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	if len(body) < 1+1+8 {
		return r, 0, fmt.Errorf("%w: body too short", ErrCorrupt)
	}
	if body[0] > uint8(DirDown) {
		return r, 0, fmt.Errorf("%w: direction %d", ErrCorrupt, body[0])
	}
	r.Dir = Dir(body[0])
	seq, sn := binary.Uvarint(body[1:])
	if sn <= 0 {
		return r, 0, fmt.Errorf("%w: bad seq varint", ErrCorrupt)
	}
	r.Seq = seq
	off := 1 + sn
	if off+8 > len(body) {
		return r, 0, fmt.Errorf("%w: missing wall stamp", ErrCorrupt)
	}
	r.Wall = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
	off += 8
	f, consumed, err := wire.Decode(body[off:])
	if err != nil {
		return r, 0, fmt.Errorf("%w: inner frame: %v", ErrCorrupt, err)
	}
	if off+consumed != len(body) {
		return r, 0, fmt.Errorf("%w: %d trailing body bytes", ErrCorrupt, len(body)-off-consumed)
	}
	r.Frame = f
	return r, total, nil
}

// metrics bundles the package instruments (nil-registry safe).
type metrics struct {
	records *telemetry.Counter
	bytes   *telemetry.Counter
	torn    *telemetry.Counter
	rebuilt *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry) metrics {
	n := func(name string) string { return telemetry.MetricName("binlog", name) }
	return metrics{
		records: reg.Counter(n("records_total")),
		bytes:   reg.Counter(n("bytes_total")),
		torn:    reg.Counter(n("torn_total")),
		rebuilt: reg.Counter(n("index_rebuilt_total")),
	}
}
