package binlog

import (
	"bytes"
	"errors"
	"testing"

	"illixr/internal/netxr/wire"
	"illixr/internal/sensors"
	"illixr/internal/telemetry"
)

// testMeta is the metadata header used across the package tests.
func testMeta() Meta {
	return Meta{
		Session: 7, App: "sponza", Seed: 42, IMURateHz: 500, CamRateHz: 15,
		ResumeToken: 0xdeadbeef, CreatedUnixNano: 1700000000000000000, Label: "test",
	}
}

// testFrames builds a deterministic mixed frame sequence.
func testFrames(n int) []wire.Frame {
	out := make([]wire.Frame, 0, n)
	for i := 0; i < n; i++ {
		var f wire.Frame
		switch i % 3 {
		case 0:
			f = wire.Frame{Type: wire.TypeIMU,
				Trace:   telemetry.SpanRef{Trace: telemetry.TraceID(i), Span: telemetry.SpanID(i * 2)},
				Payload: wire.AppendIMU(nil, sensors.IMUSample{T: float64(i) * 0.002})}
		case 1:
			f = wire.Frame{Type: wire.TypePose,
				Payload: wire.AppendPose(nil, wire.Pose{T: float64(i) * 0.002})}
		default:
			f = wire.Frame{Type: wire.TypeQoE,
				Payload: wire.AppendQoE(nil, wire.QoE{Session: 7})}
		}
		out = append(out, f)
	}
	return out
}

// record encodes a full in-memory log with alternating directions and
// returns the raw bytes plus the writer's index.
func record(t *testing.T, frames []wire.Frame) ([]byte, *Index) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta(), nil)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i, f := range frames {
		dir := DirUp
		if i%2 == 1 {
			dir = DirDown
		}
		if err := w.RecordAt(dir, float64(i)*0.01, f); err != nil {
			t.Fatalf("RecordAt %d: %v", i, err)
		}
	}
	ix := w.Index()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes(), ix
}

func TestRoundTrip(t *testing.T) {
	frames := testFrames(30)
	raw, ix := record(t, frames)

	l, err := DecodeLog(raw, nil)
	if err != nil {
		t.Fatalf("DecodeLog: %v", err)
	}
	if l.Meta != testMeta() {
		t.Fatalf("meta round-trip: got %+v", l.Meta)
	}
	if l.Torn != 0 || len(l.Records) != len(frames) {
		t.Fatalf("got %d records, torn %d; want %d, 0", len(l.Records), l.Torn, len(frames))
	}
	for i, r := range l.Records {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d: seq %d", i, r.Seq)
		}
		if r.Wall != float64(i)*0.01 {
			t.Fatalf("record %d: wall %v", i, r.Wall)
		}
		wantDir := DirUp
		if i%2 == 1 {
			wantDir = DirDown
		}
		if r.Dir != wantDir {
			t.Fatalf("record %d: dir %v", i, r.Dir)
		}
		if r.Frame.Type != frames[i].Type || r.Frame.Trace != frames[i].Trace ||
			!bytes.Equal(r.Frame.Payload, frames[i].Payload) {
			t.Fatalf("record %d: frame mismatch", i)
		}
	}
	if ix.Records != uint64(len(frames)) || ix.LogBytes != uint64(len(raw)) {
		t.Fatalf("index totals %d/%d, want %d/%d", ix.Records, ix.LogBytes, len(frames), len(raw))
	}
}

func TestWallReceiptOrderIsFileOrder(t *testing.T) {
	// seqs are writer-assigned under the lock: file order == seq order
	// == receipt order, regardless of which goroutine carried the frame.
	raw, _ := record(t, testFrames(10))
	l, err := DecodeLog(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(l.Records); i++ {
		if l.Records[i].Seq != l.Records[i-1].Seq+1 {
			t.Fatalf("seq gap at %d", i)
		}
		if l.Records[i].Wall < l.Records[i-1].Wall {
			t.Fatalf("wall regressed at %d", i)
		}
	}
}

func TestTornTruncatedFinalRecordSkipped(t *testing.T) {
	frames := testFrames(12)
	raw, _ := record(t, frames)
	reg := telemetry.NewRegistry()

	// cut into the final record at several depths: always recoverable
	for _, cut := range []int{1, 4, 10, 20} {
		l, err := DecodeLog(raw[:len(raw)-cut], reg)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if l.Torn != 1 || len(l.Records) != len(frames)-1 {
			t.Fatalf("cut %d: torn %d records %d, want 1 and %d", cut, l.Torn, len(l.Records), len(frames)-1)
		}
		if l.TornBytes == 0 {
			t.Fatalf("cut %d: torn bytes not accounted", cut)
		}
	}
	if got := reg.Counter(telemetry.MetricName("binlog", "torn_total")).Value(); got != 4 {
		t.Fatalf("illixr_binlog_torn_total = %d, want 4", got)
	}
}

func TestTornCorruptFinalRecordSkipped(t *testing.T) {
	frames := testFrames(6)
	raw, _ := record(t, frames)
	reg := telemetry.NewRegistry()

	// flip a byte inside the final record's body: CRC detects, tail skipped
	bad := append([]byte(nil), raw...)
	bad[len(bad)-6] ^= 0xff
	l, err := DecodeLog(bad, reg)
	if err != nil {
		t.Fatalf("DecodeLog: %v", err)
	}
	if l.Torn != 1 || len(l.Records) != len(frames)-1 {
		t.Fatalf("torn %d records %d, want 1 and %d", l.Torn, len(l.Records), len(frames)-1)
	}
	if got := reg.Counter(telemetry.MetricName("binlog", "torn_total")).Value(); got != 1 {
		t.Fatalf("illixr_binlog_torn_total = %d, want 1", got)
	}
}

func TestMidLogCorruptionIsAnError(t *testing.T) {
	raw, ix := record(t, testFrames(12))
	// corrupt record 3's body: data follows, so this is NOT a torn tail
	off, ok := ix.SeekSeq(3)
	if !ok {
		t.Fatal("seek 3")
	}
	bad := append([]byte(nil), raw...)
	bad[off+8] ^= 0x55
	_, err := DecodeLog(bad, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestHeaderErrors(t *testing.T) {
	raw, _ := record(t, testFrames(3))
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrHeader},
		{"short", func(b []byte) []byte { return b[:3] }, ErrHeader},
		{"magic", func(b []byte) []byte { b[0] = 'Y'; return b }, ErrMagic},
		{"version", func(b []byte) []byte { b[4] = FormatVersion + 9; return b }, ErrFormatVersion},
		{"crc", func(b []byte) []byte { b[6] ^= 0x80; return b }, ErrHeader},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), raw...))
			if _, err := DecodeLog(b, nil); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestWriterClosedRefusesRecords(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	err = w.Record(DirUp, wire.Frame{Type: wire.TypePing, Payload: wire.AppendPing(nil, wire.Ping{})})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("record after close: %v, want ErrClosed", err)
	}
}

func TestMetaDefaultsCreatedStamp(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{App: "x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.Meta().CreatedUnixNano == 0 {
		t.Fatal("CreatedUnixNano not defaulted")
	}
	_ = w.Close()
}
