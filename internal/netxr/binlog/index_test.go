package binlog

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
)

func TestIndexTable(t *testing.T) {
	cases := []struct {
		name   string
		frames int
	}{
		{"empty log", 0},
		{"single-record log", 1},
		{"small", 7},
		{"multi", 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw, ix := record(t, testFrames(tc.frames))

			// sidecar round-trip is lossless
			enc := AppendIndex(nil, ix)
			got, err := DecodeIndex(enc)
			if err != nil {
				t.Fatalf("DecodeIndex: %v", err)
			}
			if got.Records != ix.Records || got.Up != ix.Up || got.Down != ix.Down ||
				got.LogBytes != ix.LogBytes || got.Meta != ix.Meta ||
				len(got.Entries) != len(ix.Entries) || len(got.ByType) != len(ix.ByType) {
				t.Fatalf("index round-trip: got %+v want %+v", got, ix)
			}
			for i := range ix.Entries {
				if got.Entries[i] != ix.Entries[i] {
					t.Fatalf("entry %d: %+v != %+v", i, got.Entries[i], ix.Entries[i])
				}
			}

			// it validates against its own log
			if err := got.Validate(uint64(len(raw))); err != nil {
				t.Fatalf("Validate: %v", err)
			}

			// seek-to-seq: every offset decodes the right record in O(1)
			for seq := uint64(0); seq < ix.Records; seq++ {
				off, ok := got.SeekSeq(seq)
				if !ok {
					t.Fatalf("SeekSeq(%d) missing", seq)
				}
				rec, _, err := decodeRecord(raw[off:])
				if err != nil {
					t.Fatalf("decode at seek(%d): %v", seq, err)
				}
				if rec.Seq != seq {
					t.Fatalf("seek(%d) landed on seq %d", seq, rec.Seq)
				}
			}
			if _, ok := got.SeekSeq(ix.Records); ok {
				t.Fatal("SeekSeq past end reported ok")
			}

			// per-type counts agree with a full decode
			l, err := DecodeLog(raw, nil)
			if err != nil {
				t.Fatal(err)
			}
			counts := l.CountByType()
			if len(counts) != len(got.ByType) {
				t.Fatalf("type buckets %d != %d", len(got.ByType), len(counts))
			}
			for typ, n := range counts {
				if got.Count(typ) != n {
					t.Fatalf("count[%v] = %d, want %d", typ, got.Count(typ), n)
				}
			}

			// rebuilding from log bytes reproduces the sidecar exactly
			rebuilt, err := BuildIndex(raw)
			if err != nil {
				t.Fatalf("BuildIndex: %v", err)
			}
			if !bytes.Equal(AppendIndex(nil, rebuilt), enc) {
				t.Fatal("rebuilt index differs from writer's")
			}
		})
	}
}

func TestIndexLogMismatchDetection(t *testing.T) {
	_, ix := record(t, testFrames(9))
	otherRaw, _ := record(t, testFrames(12))

	cases := []struct {
		name   string
		mutate func(*Index) uint64 // returns logSize to validate against
	}{
		{"wrong log size", func(ix *Index) uint64 { return ix.LogBytes + 17 }},
		{"entry count drift", func(ix *Index) uint64 {
			ix.Entries = ix.Entries[:len(ix.Entries)-1]
			return ix.LogBytes
		}},
		{"type counts drift", func(ix *Index) uint64 {
			ix.ByType[wire.TypeIMU]++
			return ix.LogBytes
		}},
		{"direction counts drift", func(ix *Index) uint64 {
			ix.Up++
			ix.Down--
			return ix.LogBytes
		}},
		{"offset beyond log", func(ix *Index) uint64 {
			ix.Entries[len(ix.Entries)-1].Off = ix.LogBytes + 1
			return ix.LogBytes
		}},
		{"non-monotonic entries", func(ix *Index) uint64 {
			ix.Entries[2].Seq = ix.Entries[1].Seq
			return ix.LogBytes
		}},
		{"swapped sidecar", func(ix *Index) uint64 {
			other, err := BuildIndex(otherRaw)
			if err != nil {
				panic(err)
			}
			*ix = *other
			return uint64(len(otherRaw)) - 17 // stale vs a different log
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := &Index{}
			*cp = *ix
			cp.Entries = append([]Entry(nil), ix.Entries...)
			cp.ByType = map[wire.Type]uint64{}
			for k, v := range ix.ByType {
				cp.ByType[k] = v
			}
			size := tc.mutate(cp)
			if err := cp.Validate(size); !errors.Is(err, ErrIndexMismatch) {
				t.Fatalf("Validate = %v, want ErrIndexMismatch", err)
			}
		})
	}
}

func TestDecodeIndexRejectsCorruption(t *testing.T) {
	_, ix := record(t, testFrames(5))
	enc := AppendIndex(nil, ix)
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"short", func(b []byte) []byte { return b[:4] }, ErrHeader},
		{"magic", func(b []byte) []byte { b[0] = 'Z'; return b }, ErrMagic},
		{"version", func(b []byte) []byte { b[4] = 99; return b }, ErrFormatVersion},
		{"flip", func(b []byte) []byte { b[len(b)/2] ^= 1; return b }, ErrHeader},
		{"truncated", func(b []byte) []byte { return b[:len(b)-9] }, ErrHeader},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), enc...))
			if _, err := DecodeIndex(b); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestFileRoundTripWithSidecar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run"+Suffix)
	reg := telemetry.NewRegistry()
	w, err := Create(path, testMeta(), reg)
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(20)
	for i, f := range frames {
		if err := w.RecordAt(DirUp, float64(i), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + IndexSuffix); err != nil {
		t.Fatalf("sidecar not written: %v", err)
	}

	l, ix, err := ReadFile(path, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Records) != len(frames) || ix.Records != uint64(len(frames)) {
		t.Fatalf("read back %d/%d records", len(l.Records), ix.Records)
	}
	rebuilds := telemetry.MetricName("binlog", "index_rebuilt_total")
	if got := reg.Counter(rebuilds).Value(); got != 0 {
		t.Fatalf("valid sidecar triggered %d rebuilds", got)
	}

	// a stale sidecar (from a different log) is detected and rebuilt
	otherRaw, _ := record(t, testFrames(3))
	other, err := BuildIndex(otherRaw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+IndexSuffix, AppendIndex(nil, other), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ix2, err := ReadFile(path, reg)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Records != uint64(len(frames)) {
		t.Fatalf("rebuilt index has %d records", ix2.Records)
	}
	if got := reg.Counter(rebuilds).Value(); got != 1 {
		t.Fatalf("illixr_binlog_index_rebuilt_total = %d, want 1", got)
	}

	// a missing sidecar is rebuilt too
	if err := os.Remove(path + IndexSuffix); err != nil {
		t.Fatal(err)
	}
	_, ix3, err := ReadFile(path, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix3.Validate(ix.LogBytes); err != nil {
		t.Fatalf("rebuilt-from-missing index invalid: %v", err)
	}
	if got := reg.Counter(rebuilds).Value(); got != 2 {
		t.Fatalf("illixr_binlog_index_rebuilt_total = %d, want 2", got)
	}
}

func TestReadFileTornTailWithStaleIndex(t *testing.T) {
	// crash simulation: the log has a torn tail and the sidecar (written
	// by a previous clean close) no longer matches — ReadFile must skip
	// the tail AND rebuild the index to the clean prefix.
	dir := t.TempDir()
	path := filepath.Join(dir, "crash"+Suffix)
	w, err := Create(path, testMeta(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range testFrames(10) {
		if err := w.RecordAt(DirUp, float64(i), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	l, ix, err := ReadFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Torn != 1 || len(l.Records) != 9 || ix.Records != 9 {
		t.Fatalf("torn=%d records=%d ix=%d, want 1/9/9", l.Torn, len(l.Records), ix.Records)
	}
	if err := ix.Validate(uint64(len(raw)-5) - uint64(l.TornBytes)); err != nil {
		t.Fatalf("rebuilt index: %v", err)
	}
}
