package binlog

import (
	"encoding/binary"
	"fmt"
	"os"

	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
)

// Log is a fully decoded capture. Records hold wire frames whose
// Payload fields alias the input buffer — keep the buffer alive as
// long as the records.
type Log struct {
	Meta    Meta
	Records []Record
	// Offsets[i] is the byte offset of Records[i]'s length prefix.
	Offsets []uint64
	// Torn counts tail records skipped by torn-write recovery (0 or 1:
	// a crash mid-append tears at most the final record). TornBytes is
	// the size of the skipped tail region.
	Torn      int
	TornBytes int
}

// DecodeLog parses a complete capture from b. A truncated or
// CRC-corrupt FINAL record — the signature of a crash mid-append — is
// skipped and counted (Log.Torn, illixr_binlog_torn_total), never a
// panic or a silent misparse. Corruption with more records following
// is unrecoverable for a length-prefixed format and returns ErrCorrupt.
// reg may be nil.
func DecodeLog(b []byte, reg *telemetry.Registry) (*Log, error) {
	m := newMetrics(reg)
	meta, off, err := decodeHeader(b)
	if err != nil {
		return nil, err
	}
	l := &Log{Meta: meta}
	for off < len(b) {
		rec, n, err := decodeRecord(b[off:])
		if err == nil {
			l.Records = append(l.Records, rec)
			l.Offsets = append(l.Offsets, uint64(off))
			off += n
			continue
		}
		if isTornTail(b[off:], err) {
			l.Torn++
			l.TornBytes = len(b) - off
			m.torn.Inc()
			return l, nil
		}
		return nil, fmt.Errorf("binlog: record at offset %d: %w", off, err)
	}
	return l, nil
}

// isTornTail reports whether a record decode failure at the end of the
// buffer is a torn write (recoverable skip) rather than mid-log
// corruption. Truncation is always torn; a CRC/body failure is torn
// only when the record's declared extent ends exactly at EOF — i.e. it
// was the final record.
func isTornTail(rest []byte, err error) bool {
	if err == errTruncated {
		return true
	}
	n, vlen := binary.Uvarint(rest)
	if vlen <= 0 || n > MaxRecord {
		return false
	}
	return vlen+int(n)+4 == len(rest)
}

// CountByType tallies the decoded records per message type (the same
// shape the sidecar stores).
func (l *Log) CountByType() map[wire.Type]uint64 {
	out := map[wire.Type]uint64{}
	for _, r := range l.Records {
		out[r.Frame.Type]++
	}
	return out
}

// indexOf builds a sidecar-equivalent index from an already-decoded
// log. cleanBytes is the log size minus any torn tail.
func indexOf(l *Log, cleanBytes uint64) *Index {
	ix := &Index{
		Meta:     l.Meta,
		Records:  uint64(len(l.Records)),
		LogBytes: cleanBytes,
		ByType:   map[wire.Type]uint64{},
		Entries:  make([]Entry, 0, len(l.Records)),
	}
	for i, r := range l.Records {
		ix.Entries = append(ix.Entries, Entry{
			Seq: r.Seq, Off: l.Offsets[i], Type: r.Frame.Type, Dir: r.Dir})
		ix.ByType[r.Frame.Type]++
		if r.Dir == DirUp {
			ix.Up++
		} else {
			ix.Down++
		}
	}
	return ix
}

// ReadFile loads a capture and its sidecar index. If the sidecar is
// missing, unreadable, or fails Validate against the log (stale or
// swapped), the index is rebuilt from the log bytes and the rebuild is
// counted into illixr_binlog_index_rebuilt_total. reg may be nil.
func ReadFile(path string, reg *telemetry.Registry) (*Log, *Index, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	l, err := DecodeLog(b, reg)
	if err != nil {
		return nil, nil, err
	}
	cleanBytes := uint64(len(b) - l.TornBytes)
	if ib, err := os.ReadFile(path + IndexSuffix); err == nil {
		if ix, err := DecodeIndex(ib); err == nil && ix.Validate(cleanBytes) == nil {
			return l, ix, nil
		}
	}
	newMetrics(reg).rebuilt.Inc()
	return l, indexOf(l, cleanBytes), nil
}
