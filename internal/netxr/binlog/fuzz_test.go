package binlog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"illixr/internal/netxr/wire"
)

// fuzzSeeds builds the in-code seed inputs (the checked-in corpus under
// testdata/fuzz/FuzzBinlogDecode mirrors these shapes).
func fuzzSeeds() [][]byte {
	var seeds [][]byte

	// a clean multi-record log
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Meta{Session: 1, App: "fuzz", Seed: 3,
		IMURateHz: 500, CamRateHz: 15, CreatedUnixNano: 1, Label: "seed"}, nil)
	for i, f := range testFrames(5) {
		_ = w.RecordAt(DirUp, float64(i)*0.001, f)
	}
	_ = w.Close()
	clean := append([]byte(nil), buf.Bytes()...)
	seeds = append(seeds, clean)

	// header only (empty log)
	seeds = append(seeds, appendHeader(nil, Meta{App: "empty", CreatedUnixNano: 1}))
	// torn tail
	seeds = append(seeds, clean[:len(clean)-7])
	// corrupt final record
	corrupt := append([]byte(nil), clean...)
	corrupt[len(corrupt)-5] ^= 0xa5
	seeds = append(seeds, corrupt)
	// bad magic, short, empty
	seeds = append(seeds, []byte("XRBLX"), []byte("XR"), nil)
	// a sidecar index fed to the log decoder (wrong magic family)
	ixRaw := AppendIndex(nil, &Index{Meta: Meta{CreatedUnixNano: 1}, ByType: map[wire.Type]uint64{}})
	seeds = append(seeds, ixRaw)
	return seeds
}

// FuzzBinlogDecode hammers the capture decoder with arbitrary bytes:
// it must never panic and must classify every input as (a) a clean log,
// (b) a log with a recoverable torn tail, or (c) a typed error. Silent
// misparse is checked by re-encoding whatever was decoded and decoding
// it again: the records must survive the round trip unchanged. (The
// comparison is semantic, not byte-exact — binary.Uvarint tolerates
// non-minimal encodings, so a hostile log need not be canonical.)
func FuzzBinlogDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := DecodeLog(data, nil)
		if err != nil {
			return // typed rejection is fine; panics are what fuzzing hunts
		}
		// no silent misparse: what was decoded re-encodes into a log
		// that decodes to the same thing
		enc := appendHeader(nil, l.Meta)
		for _, r := range l.Records {
			enc = appendRecord(enc, r)
		}
		l2, err := DecodeLog(enc, nil)
		if err != nil {
			t.Fatalf("re-encoded log rejected: %v", err)
		}
		if l2.Meta != l.Meta || l2.Torn != 0 || len(l2.Records) != len(l.Records) {
			t.Fatalf("round trip drifted: %d records torn=%d", len(l2.Records), l2.Torn)
		}
		for i := range l.Records {
			a, b := l.Records[i], l2.Records[i]
			if a.Seq != b.Seq || a.Wall != b.Wall || a.Dir != b.Dir ||
				a.Frame.Type != b.Frame.Type || a.Frame.Trace != b.Frame.Trace ||
				!bytes.Equal(a.Frame.Payload, b.Frame.Payload) {
				t.Fatalf("record %d drifted in round trip", i)
			}
		}
		// the index built from any accepted log must validate against it
		ix, err := BuildIndex(data)
		if err != nil {
			t.Fatalf("BuildIndex after clean decode: %v", err)
		}
		if verr := ix.Validate(uint64(len(data) - l.TornBytes)); verr != nil {
			t.Fatalf("rebuilt index invalid: %v", verr)
		}
		// and the sidecar codec must round-trip it
		ix2, err := DecodeIndex(AppendIndex(nil, ix))
		if err != nil {
			t.Fatalf("index round-trip: %v", err)
		}
		if ix2.Records != ix.Records || ix2.Up != ix.Up || ix2.Down != ix.Down {
			t.Fatalf("index round-trip drifted: %+v vs %+v", ix2, ix)
		}
	})
}

// TestFuzzCorpusChecked keeps the checked-in seed corpus under
// testdata/fuzz/FuzzBinlogDecode in sync with fuzzSeeds(): run with
// ILLIXR_UPDATE_CORPUS=1 to regenerate, otherwise it asserts every
// seed is present (so `go test -fuzz` starts from real captures, torn
// tails, and corrupt records even on a fresh checkout).
func TestFuzzCorpusChecked(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzBinlogDecode")
	seeds := fuzzSeeds()
	if os.Getenv("ILLIXR_UPDATE_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d corpus seeds to %s", len(seeds), dir)
		return
	}
	for i := range seeds {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if _, err := os.Stat(name); err != nil {
			t.Fatalf("corpus seed missing (regenerate with ILLIXR_UPDATE_CORPUS=1): %v", err)
		}
	}
}

// FuzzIndexDecode hammers the sidecar decoder the same way.
func FuzzIndexDecode(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Meta{App: "ixseed", CreatedUnixNano: 1}, nil)
	for i, fr := range testFrames(4) {
		_ = w.RecordAt(DirUp, float64(i), fr)
	}
	seedIx := w.Index()
	_ = w.Close()
	f.Add(AppendIndex(nil, seedIx))
	f.Add([]byte("XRBI"))
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := DecodeIndex(data)
		if err != nil {
			return
		}
		// accepted indexes survive a re-encode/decode round trip
		ix2, err := DecodeIndex(AppendIndex(nil, ix))
		if err != nil {
			t.Fatalf("re-encoded index rejected: %v", err)
		}
		if ix2.Records != ix.Records || ix2.Up != ix.Up || ix2.Down != ix.Down ||
			ix2.LogBytes != ix.LogBytes || ix2.Meta != ix.Meta ||
			len(ix2.Entries) != len(ix.Entries) {
			t.Fatal("index round trip drifted")
		}
		for i := range ix.Entries {
			if ix.Entries[i] != ix2.Entries[i] {
				t.Fatalf("entry %d drifted", i)
			}
		}
	})
}
