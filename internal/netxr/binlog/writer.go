package binlog

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
)

// Writer is the single append path of one capture. Record is safe for
// concurrent use from every tap goroutine: the sequence number and the
// wall-receipt stamp are assigned under the writer's lock, so the file
// order IS the receipt order even when the session's reader and writer
// goroutines race into the tap. Buffers are reused across records, so
// the steady-state append is allocation-free apart from the amortized
// growth of the in-memory index.
type Writer struct {
	mu      sync.Mutex
	w       *bufio.Writer
	f       *os.File // nil when writing to a caller-supplied stream
	idxPath string   // sidecar path written on Close ("" = none)

	meta  Meta
	start time.Time
	now   func() float64 // seconds since capture start

	buf     []byte
	off     uint64
	seq     uint64
	entries []Entry
	up      uint64
	down    uint64
	byType  [256]uint64

	m      metrics
	err    error
	closed bool
}

// Create opens a capture file at path (and, on Close, a sidecar index
// at path+".idx"). reg may be nil.
func Create(path string, meta Meta, reg *telemetry.Registry) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := newWriter(bufio.NewWriterSize(f, 1<<16), meta, reg)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	w.f = f
	w.idxPath = path + IndexSuffix
	return w, nil
}

// NewWriter starts a capture onto an arbitrary stream (tests record
// into byte buffers). The header is written immediately; the index is
// kept in memory and available via Index after Close.
func NewWriter(out io.Writer, meta Meta, reg *telemetry.Registry) (*Writer, error) {
	bw, ok := out.(*bufio.Writer)
	if !ok {
		bw = bufio.NewWriterSize(out, 1<<16)
	}
	return newWriter(bw, meta, reg)
}

func newWriter(bw *bufio.Writer, meta Meta, reg *telemetry.Registry) (*Writer, error) {
	if meta.CreatedUnixNano == 0 {
		meta.CreatedUnixNano = time.Now().UnixNano()
	}
	w := &Writer{w: bw, meta: meta, start: time.Now(), m: newMetrics(reg)}
	w.now = func() float64 { return time.Since(w.start).Seconds() }
	w.buf = appendHeader(w.buf[:0], meta)
	if _, err := bw.Write(w.buf); err != nil {
		return nil, err
	}
	w.off = uint64(len(w.buf))
	return w, nil
}

// Meta returns the capture's metadata header.
func (w *Writer) Meta() Meta { return w.meta }

// SetClock overrides the wall-receipt clock (seconds since capture
// start). Deterministic tests and virtual-time captures install their
// own; production taps keep the default monotonic clock.
func (w *Writer) SetClock(now func() float64) {
	w.mu.Lock()
	w.now = now
	w.mu.Unlock()
}

// Reserve pre-grows the in-memory index so a capture of a known size
// appends with zero allocations.
func (w *Writer) Reserve(records int) {
	w.mu.Lock()
	if cap(w.entries) < records {
		grown := make([]Entry, len(w.entries), records)
		copy(grown, w.entries)
		w.entries = grown
	}
	w.mu.Unlock()
}

// Record appends one frame stamped with the current clock.
func (w *Writer) Record(dir Dir, f wire.Frame) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recordLocked(dir, w.now(), f)
}

// RecordAt appends one frame with an explicit wall-receipt stamp
// (virtual-time captures).
func (w *Writer) RecordAt(dir Dir, wall float64, f wire.Frame) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recordLocked(dir, wall, f)
}

func (w *Writer) recordLocked(dir Dir, wall float64, f wire.Frame) error {
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	rec := Record{Dir: dir, Seq: w.seq, Wall: wall, Frame: f}
	w.buf = appendRecord(w.buf[:0], rec)
	return w.commitLocked(dir, f.Type)
}

// RecordRaw appends one already-encoded frame stamped with the current
// clock: the zero-copy relay's tap. The record is byte-identical to a
// Record of the decoded equivalent — the body embeds the frame's wire
// bytes either way — so raw and decoded captures of the same traffic
// produce the same file. The raw bytes are copied synchronously; the
// caller's scratch may be reused on return.
func (w *Writer) RecordRaw(dir Dir, raw wire.Raw) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recordRawLocked(dir, w.now(), raw)
}

// RecordRawAt is RecordRaw with an explicit wall-receipt stamp.
func (w *Writer) RecordRawAt(dir Dir, wall float64, raw wire.Raw) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recordRawLocked(dir, wall, raw)
}

func (w *Writer) recordRawLocked(dir Dir, wall float64, raw wire.Raw) error {
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	w.buf = appendRecordRaw(w.buf[:0], dir, w.seq, wall, raw.Bytes)
	return w.commitLocked(dir, raw.Type)
}

// commitLocked writes the encoded record in w.buf and advances the
// index and counters.
func (w *Writer) commitLocked(dir Dir, typ wire.Type) error {
	if _, err := w.w.Write(w.buf); err != nil {
		w.err = fmt.Errorf("binlog: append: %w", err)
		return w.err
	}
	w.entries = append(w.entries, Entry{Seq: w.seq, Off: w.off, Type: typ, Dir: dir})
	w.off += uint64(len(w.buf))
	w.seq++
	if dir == DirUp {
		w.up++
	} else {
		w.down++
	}
	w.byType[typ]++
	w.m.records.Inc()
	w.m.bytes.Add(len(w.buf))
	return nil
}

// Count returns the number of records appended so far.
func (w *Writer) Count() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Bytes returns the number of log bytes produced so far (header included).
func (w *Writer) Bytes() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.off
}

// Index returns the capture's index (meta echo, counts, seq→offset
// entries). Call after the last Record; the returned value snapshots
// the current state.
func (w *Writer) Index() *Index {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.indexLocked()
}

func (w *Writer) indexLocked() *Index {
	ix := &Index{
		Meta:     w.meta,
		Records:  w.seq,
		LogBytes: w.off,
		Up:       w.up,
		Down:     w.down,
		ByType:   map[wire.Type]uint64{},
		Entries:  append([]Entry(nil), w.entries...),
	}
	for t, n := range w.byType {
		if n > 0 {
			ix.ByType[wire.Type(t)] = n
		}
	}
	return ix
}

// Close flushes the log and, for file-backed captures, writes the
// sidecar index and closes the file. Idempotent; the first error wins.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	if err := w.w.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if w.f != nil {
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = err
		}
		if w.idxPath != "" && w.err == nil {
			ix := w.indexLocked()
			if err := os.WriteFile(w.idxPath, AppendIndex(nil, ix), 0o644); err != nil {
				w.err = err
			}
		}
	}
	return w.err
}
