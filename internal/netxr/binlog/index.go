package binlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"illixr/internal/netxr/wire"
)

// Entry maps one record's sequence number to its byte offset in the
// log (the offset of the record's length prefix), plus enough shape
// (message type, direction) for per-type slicing without reading the
// log.
type Entry struct {
	Seq  uint64
	Off  uint64
	Type wire.Type
	Dir  Dir
}

// Index is the sidecar of one binlog: the metadata header echoed, the
// per-direction and per-message-type record counts, the total log size
// (for mismatch detection), and the dense seq → offset table enabling
// O(1) seek into multi-gigabyte captures.
//
// Sidecar layout (little-endian):
//
//	magic "XRBI", format version byte
//	uvarint metadata length, metadata payload (same codec as the log)
//	uvarint record count, uvarint log byte size
//	uvarint up count, uvarint down count
//	uvarint #type buckets, then per bucket: type byte + uvarint count
//	per entry: uvarint seq delta, uvarint off delta, type byte, dir byte
//	CRC-32 (IEEE) over everything above
type Index struct {
	Meta     Meta
	Records  uint64
	LogBytes uint64
	Up       uint64
	Down     uint64
	ByType   map[wire.Type]uint64
	Entries  []Entry
}

// Count returns the number of records of type t.
func (ix *Index) Count(t wire.Type) uint64 { return ix.ByType[t] }

// SeekSeq returns the byte offset of the record with sequence number
// seq, or ok=false if the log holds no such record. Entries are
// ordered by seq (the writer assigns them densely), so this is a
// binary search even for sparse slices of a log.
func (ix *Index) SeekSeq(seq uint64) (off uint64, ok bool) {
	i := sort.Search(len(ix.Entries), func(i int) bool { return ix.Entries[i].Seq >= seq })
	if i >= len(ix.Entries) || ix.Entries[i].Seq != seq {
		return 0, false
	}
	return ix.Entries[i].Off, true
}

// Validate cross-checks the index against the log it claims to
// describe: the byte size must match exactly and every offset must lie
// inside the log. A stale or swapped sidecar returns ErrIndexMismatch
// so readers rebuild instead of seeking into garbage.
func (ix *Index) Validate(logSize uint64) error {
	if ix.LogBytes != logSize {
		return fmt.Errorf("%w: index says %d log bytes, log has %d",
			ErrIndexMismatch, ix.LogBytes, logSize)
	}
	if uint64(len(ix.Entries)) != ix.Records {
		return fmt.Errorf("%w: %d entries for %d records",
			ErrIndexMismatch, len(ix.Entries), ix.Records)
	}
	// the summary counts must agree with the entry table itself
	var up, down uint64
	byType := map[wire.Type]uint64{}
	var prevSeq, prevOff uint64
	for i, e := range ix.Entries {
		if e.Off >= logSize {
			return fmt.Errorf("%w: entry %d offset %d beyond log end %d",
				ErrIndexMismatch, i, e.Off, logSize)
		}
		if i > 0 && (e.Seq <= prevSeq || e.Off <= prevOff) {
			return fmt.Errorf("%w: entry %d not monotonic", ErrIndexMismatch, i)
		}
		prevSeq, prevOff = e.Seq, e.Off
		if e.Dir == DirUp {
			up++
		} else {
			down++
		}
		byType[e.Type]++
	}
	if up != ix.Up || down != ix.Down {
		return fmt.Errorf("%w: direction counts %d/%d, entries say %d/%d",
			ErrIndexMismatch, ix.Up, ix.Down, up, down)
	}
	if len(byType) != len(ix.ByType) {
		return fmt.Errorf("%w: %d type buckets, entries say %d",
			ErrIndexMismatch, len(ix.ByType), len(byType))
	}
	for typ, n := range byType {
		if ix.ByType[typ] != n {
			return fmt.Errorf("%w: count[%v] = %d, entries say %d",
				ErrIndexMismatch, typ, ix.ByType[typ], n)
		}
	}
	return nil
}

// AppendIndex encodes ix onto dst in the sidecar format.
func AppendIndex(dst []byte, ix *Index) []byte {
	start := len(dst)
	dst = append(dst, IndexMagic[:]...)
	dst = append(dst, FormatVersion)
	meta := appendMeta(nil, ix.Meta)
	dst = binary.AppendUvarint(dst, uint64(len(meta)))
	dst = append(dst, meta...)
	dst = binary.AppendUvarint(dst, ix.Records)
	dst = binary.AppendUvarint(dst, ix.LogBytes)
	dst = binary.AppendUvarint(dst, ix.Up)
	dst = binary.AppendUvarint(dst, ix.Down)
	// deterministic bucket order: by type byte
	types := make([]int, 0, len(ix.ByType))
	for t := range ix.ByType {
		types = append(types, int(t))
	}
	sort.Ints(types)
	dst = binary.AppendUvarint(dst, uint64(len(types)))
	for _, t := range types {
		dst = append(dst, byte(t))
		dst = binary.AppendUvarint(dst, ix.ByType[wire.Type(t)])
	}
	var prevSeq, prevOff uint64
	for _, e := range ix.Entries {
		dst = binary.AppendUvarint(dst, e.Seq-prevSeq)
		dst = binary.AppendUvarint(dst, e.Off-prevOff)
		dst = append(dst, byte(e.Type), byte(e.Dir))
		prevSeq, prevOff = e.Seq, e.Off
	}
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// DecodeIndex parses a sidecar index.
func DecodeIndex(b []byte) (*Index, error) {
	if len(b) < len(IndexMagic)+1+4 {
		return nil, fmt.Errorf("%w: index too short", ErrHeader)
	}
	if b[0] != IndexMagic[0] || b[1] != IndexMagic[1] ||
		b[2] != IndexMagic[2] || b[3] != IndexMagic[3] {
		return nil, ErrMagic
	}
	if b[4] != FormatVersion {
		return nil, fmt.Errorf("%w: index version %d want %d",
			ErrFormatVersion, b[4], FormatVersion)
	}
	want := binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(b[:len(b)-4]) != want {
		return nil, fmt.Errorf("%w: index CRC mismatch", ErrHeader)
	}
	d := &metaDec{b: b[:len(b)-4], off: 5}
	metaLen := d.uvarint()
	if d.err != nil || metaLen > uint64(len(d.b)-d.off) {
		return nil, fmt.Errorf("%w: index metadata length", ErrHeader)
	}
	meta, err := decodeMeta(d.b[d.off : d.off+int(metaLen)])
	if err != nil {
		return nil, err
	}
	d.off += int(metaLen)
	ix := &Index{Meta: meta, ByType: map[wire.Type]uint64{}}
	ix.Records = d.uvarint()
	ix.LogBytes = d.uvarint()
	ix.Up = d.uvarint()
	ix.Down = d.uvarint()
	buckets := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if buckets > 256 {
		return nil, fmt.Errorf("%w: %d type buckets", ErrHeader, buckets)
	}
	for i := uint64(0); i < buckets; i++ {
		if d.off >= len(d.b) {
			return nil, fmt.Errorf("%w: index truncated in buckets", ErrHeader)
		}
		t := wire.Type(d.b[d.off])
		d.off++
		ix.ByType[t] = d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
	}
	if ix.Records > uint64(len(d.b)) { // each entry is >= 4 bytes; cheap hostile bound
		return nil, fmt.Errorf("%w: %d records for %d index bytes", ErrHeader, ix.Records, len(d.b))
	}
	ix.Entries = make([]Entry, 0, ix.Records)
	var seq, off uint64
	for i := uint64(0); i < ix.Records; i++ {
		dSeq := d.uvarint()
		dOff := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if d.off+2 > len(d.b) {
			return nil, fmt.Errorf("%w: index truncated in entries", ErrHeader)
		}
		if i > 0 {
			seq += dSeq
			off += dOff
		} else {
			seq, off = dSeq, dOff
		}
		e := Entry{Seq: seq, Off: off, Type: wire.Type(d.b[d.off]), Dir: Dir(d.b[d.off+1])}
		if e.Dir > DirDown {
			return nil, fmt.Errorf("%w: index entry %d direction %d", ErrHeader, i, e.Dir)
		}
		d.off += 2
		ix.Entries = append(ix.Entries, e)
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing index bytes", ErrHeader, len(d.b)-d.off)
	}
	return ix, nil
}

// BuildIndex reconstructs the sidecar from log bytes alone (used when
// the sidecar is missing, stale, or fails Validate). The returned
// index covers exactly the records DecodeLog would yield — a torn tail
// is excluded.
func BuildIndex(log []byte) (*Index, error) {
	l, err := DecodeLog(log, nil)
	if err != nil {
		return nil, err
	}
	return indexOf(l, uint64(len(log)-l.TornBytes)), nil
}
