package binlog

import (
	"bytes"
	"testing"

	"illixr/internal/netxr/wire"
	"illixr/internal/telemetry"
)

// TestRecordRawByteIdentical: a capture built from raw pass-through
// frames must be byte-identical to one built from the decoded frames —
// the zero-copy relay's tap records exactly what the old tap did.
func TestRecordRawByteIdentical(t *testing.T) {
	frames := []wire.Frame{
		{Type: wire.TypeHello, Payload: wire.AppendHello(nil, wire.Hello{Proto: wire.Version, App: "raw"})},
		{Type: wire.TypeIMU, Trace: telemetry.SpanRef{Trace: 3, Span: 4}, Payload: []byte{1, 2, 3}},
		{Type: wire.TypePose, Payload: []byte{9, 9}},
		{Type: wire.TypeBye, Payload: wire.AppendBye(nil, wire.Bye{Reason: "done"})},
	}
	meta := Meta{Label: "raw-tap-test", CreatedUnixNano: 1}

	var dec bytes.Buffer
	wd, err := NewWriter(&dec, meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	wd.SetClock(func() float64 { return 0.5 })
	for i, f := range frames {
		dir := DirUp
		if i%2 == 1 {
			dir = DirDown
		}
		if err := wd.Record(dir, f); err != nil {
			t.Fatal(err)
		}
	}
	if err := wd.Close(); err != nil {
		t.Fatal(err)
	}

	var raw bytes.Buffer
	wr, err := NewWriter(&raw, meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		dir := DirUp
		if i%2 == 1 {
			dir = DirDown
		}
		r := wire.Raw{Type: f.Type, Trace: f.Trace, Bytes: wire.AppendFrame(nil, f)}
		if err := wr.RecordRawAt(dir, 0.5, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(dec.Bytes(), raw.Bytes()) {
		t.Fatal("raw-tap capture differs from decoded-tap capture")
	}

	// and the raw capture decodes back to the original frames
	l, err := DecodeLog(raw.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Records) != len(frames) {
		t.Fatalf("decoded %d records, want %d", len(l.Records), len(frames))
	}
	for i, rec := range l.Records {
		if rec.Frame.Type != frames[i].Type || !bytes.Equal(rec.Frame.Payload, frames[i].Payload) {
			t.Fatalf("record %d does not round-trip", i)
		}
	}
}
