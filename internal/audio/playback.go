package audio

import (
	"math"

	"illixr/internal/dsp"
	"illixr/internal/mathx"
	"illixr/internal/parallel"
)

// Playback renders an ambisonic soundfield to binaural stereo following
// libspatialaudio's stages (Table VII): psychoacoustic filter, soundfield
// rotation from the listener pose, soundfield zoom, and binauralization
// through HRTF convolution over a virtual loudspeaker rig.
type Playback struct {
	Order      int
	BlockSize  int
	SampleRate float64

	psychoFilters []*dsp.OverlapAdd // one per ambisonic channel
	speakers      []Direction
	decode        *mathx.Mat        // speakers × channels decoding matrix
	hrtfL         []*dsp.OverlapAdd // per speaker
	hrtfR         []*dsp.OverlapAdd

	// ZoomStrength in [0,1): 0 disables the zoom stage.
	ZoomStrength float64

	pool *parallel.Pool

	// Stats for the performance model
	BlocksProcessed int

	// Persistent per-block state (allocated once in NewPlayback) so
	// steady-state Process calls allocate nothing: the reusable SH
	// rotation, per-speaker decode scratch, HRTF outputs, the stereo
	// output pair, and the four stage kernels (DESIGN.md §10). Process is
	// not safe for concurrent use on one Playback (it never was: the
	// overlap-add filters carry state).
	rot         *SHRotation
	spk         [][]float64 // per-speaker decode scratch
	ls, rs      [][]float64 // per-speaker HRTF outputs (aliases convolver scratch)
	left, right []float64
	curField    [][]float64
	zoomZ       float64
	psychoFn    func(lo, hi int)
	zoomFn      func(lo, hi int)
	binauralFn  func(lo, hi int)
}

// SetPool sets the worker pool for the playback stages (nil = serial).
// Output is bitwise identical for every worker count: the per-channel
// filters and per-speaker HRTF convolvers each own their overlap state, the
// rotation and zoom write disjoint sample tiles, and the final mixdown sums
// speakers in ascending order exactly as the serial path (DESIGN.md §8).
func (p *Playback) SetPool(pl *parallel.Pool) { p.pool = pl }

// NewPlayback builds the playback chain.
func NewPlayback(order, blockSize int, sampleRate float64) *Playback {
	p := &Playback{
		Order: order, BlockSize: blockSize, SampleRate: sampleRate,
		ZoomStrength: 0.3,
	}
	nCh := ChannelCount(order)
	// Psychoacoustic optimization filter: a gentle high-shelf compensating
	// the perceptual dullness of ambisonic reproduction. Applied per
	// channel in the frequency domain (FFT → multiply → IFFT), as in
	// Table VII.
	shelf := designShelfFIR(64, sampleRate)
	p.psychoFilters = make([]*dsp.OverlapAdd, nCh)
	for c := range p.psychoFilters {
		p.psychoFilters[c] = dsp.NewOverlapAdd(shelf, blockSize)
	}
	// Virtual loudspeaker rig: cube corners + horizontal square (12
	// speakers) for 2nd order decoding.
	p.speakers = speakerRig()
	p.decode = decodingMatrix(order, p.speakers)
	// Synthetic HRTFs: interaural delay + head-shadow lowpass per speaker.
	p.hrtfL = make([]*dsp.OverlapAdd, len(p.speakers))
	p.hrtfR = make([]*dsp.OverlapAdd, len(p.speakers))
	for i, dir := range p.speakers {
		hl, hr := SynthHRTF(dir, sampleRate)
		p.hrtfL[i] = dsp.NewOverlapAdd(hl, blockSize)
		p.hrtfR[i] = dsp.NewOverlapAdd(hr, blockSize)
	}
	p.rot = NewSHRotation(order, mathx.QuatIdentity())
	nSpk := len(p.speakers)
	p.spk = make([][]float64, nSpk)
	for i := range p.spk {
		p.spk[i] = make([]float64, blockSize)
	}
	p.ls = make([][]float64, nSpk)
	p.rs = make([][]float64, nSpk)
	p.left = make([]float64, blockSize)
	p.right = make([]float64, blockSize)
	p.psychoFn = func(lo, hi int) {
		for c := lo; c < hi; c++ {
			out := p.psychoFilters[c].Process(p.curField[c])
			copy(p.curField[c], out)
		}
	}
	p.zoomFn = func(lo, hi int) {
		field, z := p.curField, p.zoomZ
		g := 1 / math.Sqrt(1+z*z)
		for i := lo; i < hi; i++ {
			w := field[0][i]
			x := field[3][i]
			field[0][i] = g * (w + z*x)
			field[3][i] = g * (x + z*w)
		}
	}
	p.binauralFn = func(lo, hi int) {
		field := p.curField
		nc := ChannelCount(p.Order)
		for s := lo; s < hi; s++ {
			spk := p.spk[s]
			for i := range spk {
				spk[i] = 0
			}
			for c := 0; c < nc; c++ {
				g := p.decode.At(s, c)
				if g == 0 {
					continue
				}
				row := field[c]
				for i := 0; i < p.BlockSize; i++ {
					spk[i] += g * row[i]
				}
			}
			p.ls[s] = p.hrtfL[s].Process(spk)
			p.rs[s] = p.hrtfR[s].Process(spk)
		}
	}
	return p
}

// speakerRig returns the 12 virtual speaker directions.
func speakerRig() []Direction {
	var out []Direction
	// horizontal square
	for i := 0; i < 4; i++ {
		az := float64(i) * math.Pi / 2
		out = append(out, DirectionFromAzEl(az, 0))
	}
	// cube corners (elevation ±35.26°)
	for _, el := range []float64{0.6155, -0.6155} {
		for i := 0; i < 4; i++ {
			az := math.Pi/4 + float64(i)*math.Pi/2
			out = append(out, DirectionFromAzEl(az, el))
		}
	}
	return out
}

// decodingMatrix builds a mode-matching ambisonic decoder: D = pinv(Y)
// approximated by Yᵀ scaled per band (sampling decoder), which is exact
// for uniform rigs.
func decodingMatrix(order int, speakers []Direction) *mathx.Mat {
	nCh := ChannelCount(order)
	d := mathx.NewMat(len(speakers), nCh)
	norm := 1.0 / float64(len(speakers))
	for s, dir := range speakers {
		y := EncodeSH(order, dir)
		for c := 0; c < nCh; c++ {
			// per-band weighting (2l+1) recovers plane-wave amplitude
			l := bandOf(c)
			d.Set(s, c, y[c]*float64(2*l+1)*norm)
		}
	}
	return d
}

func bandOf(acn int) int {
	l := 0
	for (l+1)*(l+1) <= acn {
		l++
	}
	return l
}

// designShelfFIR windows an analytic high-shelf impulse response.
func designShelfFIR(taps int, sampleRate float64) []float64 {
	// +3 dB above ~4 kHz: h = δ + g·(δ − lowpass)
	fc := 4000.0 / sampleRate
	h := make([]float64, taps)
	win := dsp.Hamming(taps)
	mid := taps / 2
	for i := range h {
		t := float64(i - mid)
		var lp float64
		if t == 0 {
			lp = 2 * fc
		} else {
			lp = math.Sin(2*math.Pi*fc*t) / (math.Pi * t)
		}
		h[i] = -0.41 * lp * win[i]
	}
	h[mid] += 1 + 0.41*2*fc // delta plus gain correction
	return h
}

// SynthHRTF returns left/right FIR approximations of a head-related
// transfer function for a source direction: interaural time difference as
// fractional delay plus a head-shadow lowpass on the far ear.
func SynthHRTF(dir Direction, sampleRate float64) (left, right []float64) {
	const taps = 64
	const headRadius = 0.0875 // meters
	const c = 343.0
	// azimuth of the source: positive Y is left
	sinAz := dir.Y
	itd := headRadius / c * (sinAz + math.Asin(mathx.Clamp(sinAz, -1, 1))) // Woodworth
	delayL := math.Max(0, -itd) * sampleRate
	delayR := math.Max(0, itd) * sampleRate
	// shadow: the ear away from the source gets a lowpass
	shadowL := mathx.Clamp(0.5-0.5*sinAz, 0, 1) // 1 = fully shadowed left
	shadowR := mathx.Clamp(0.5+0.5*sinAz, 0, 1)
	left = fractionalDelayFIR(taps, 8+delayL, 1-0.6*shadowL, shadowL, sampleRate)
	right = fractionalDelayFIR(taps, 8+delayR, 1-0.6*shadowR, shadowR, sampleRate)
	return left, right
}

// fractionalDelayFIR builds a windowed-sinc delay with optional one-pole
// style lowpass mixing (shadow in [0,1]). The Hann window is centred on
// the delay so the passband gain is independent of the delay value.
func fractionalDelayFIR(taps int, delay, gain, shadow, sampleRate float64) []float64 {
	h := make([]float64, taps)
	const halfWidth = 8.0
	for i := range h {
		t := float64(i) - delay
		if math.Abs(t) > halfWidth {
			continue
		}
		var s float64
		if t == 0 {
			s = 1
		} else {
			s = math.Sin(math.Pi*t) / (math.Pi * t)
		}
		win := 0.5 * (1 + math.Cos(math.Pi*t/halfWidth))
		h[i] = gain * s * win
	}
	if shadow > 0 {
		// crude head-shadow: blend with a 2-sample moving average
		sm := make([]float64, taps)
		for i := range sm {
			acc := h[i]
			n := 1.0
			if i > 0 {
				acc += h[i-1]
				n++
			}
			if i+1 < taps {
				acc += h[i+1]
				n++
			}
			sm[i] = acc / n
		}
		for i := range h {
			h[i] = (1-shadow)*h[i] + shadow*sm[i]
		}
	}
	return h
}

// Process renders one soundfield block to stereo given the listener pose.
// The field is modified in place (filtered, rotated, zoomed). The returned
// stereo buffers are playback-owned scratch, overwritten by the next
// Process call.
func (p *Playback) Process(field [][]float64, listener mathx.Pose) (left, right []float64) {
	nCh := ChannelCount(p.Order)
	if len(field) < nCh {
		panic("audio: field channel count below playback order")
	}
	p.curField = field
	// 1) psychoacoustic filter per channel: each channel owns its
	// OverlapAdd state, so channels parallelize with disjoint writes.
	p.pool.ForTiles("audio_psycho", nCh, 1, p.psychoFn)
	// 2) rotation: counter-rotate the field by the listener orientation
	p.rot.SetQuat(listener.Rot.Inverse())
	p.rot.ApplyBlockPool(p.pool, field)
	// 3) zoom: forward emphasis mixing W with X (ACN 3)
	if p.ZoomStrength > 0 && p.Order >= 1 {
		p.zoomZ = p.ZoomStrength
		p.pool.ForTiles("audio_zoom", p.BlockSize, audioTile, p.zoomFn)
	}
	// 4) binauralization: decode to virtual speakers, convolve HRTFs.
	// Speakers parallelize (each owns its HRTF convolver pair and scratch
	// buffer); the stereo mixdown then sums speakers in ascending order,
	// matching the serial accumulation order bit for bit.
	nSpk := len(p.speakers)
	p.pool.ForTiles("audio_binaural", nSpk, 1, p.binauralFn)
	left, right = p.left, p.right
	for i := 0; i < p.BlockSize; i++ {
		left[i] = 0
		right[i] = 0
	}
	for s := 0; s < nSpk; s++ {
		l, r := p.ls[s], p.rs[s]
		for i := 0; i < p.BlockSize; i++ {
			left[i] += l[i]
			right[i] += r[i]
		}
	}
	p.curField = nil
	p.BlocksProcessed++
	return left, right
}

// RMS returns the root-mean-square level of a sample buffer.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}
