// Package audio implements ILLIXR's audio pipeline (Table II): ambisonic
// encoding of mono sources into a higher-order-ambisonics (HOA)
// soundfield, and playback — psychoacoustic filtering, pose-driven
// soundfield rotation and zoom, and HRTF binauralization — mirroring
// libspatialaudio's processing structure (Table VII).
package audio

import (
	"math"
	"sync"

	"illixr/internal/mathx"
	"illixr/internal/parallel"
	"illixr/internal/recycle"
)

// ACN channel count for a given ambisonic order.
func ChannelCount(order int) int { return (order + 1) * (order + 1) }

// Direction is a unit vector pointing from the listener toward the source
// (world frame: X forward, Y left, Z up).
type Direction = mathx.Vec3

// DirectionFromAzEl builds a direction from azimuth (rad, counterclockwise
// from +X) and elevation (rad, up from the horizontal plane).
func DirectionFromAzEl(az, el float64) Direction {
	ce := math.Cos(el)
	return Direction{X: ce * math.Cos(az), Y: ce * math.Sin(az), Z: math.Sin(el)}
}

// EncodeSH evaluates the real spherical harmonics up to the given order in
// ACN channel ordering with SN3D normalization (the ambiX convention used
// by libspatialaudio) for a unit direction.
func EncodeSH(order int, d Direction) []float64 {
	out := make([]float64, ChannelCount(order))
	EncodeSHInto(order, d, out)
	return out
}

// EncodeSHInto is EncodeSH writing into a caller-provided buffer of length
// ChannelCount(order), allocating nothing.
func EncodeSHInto(order int, d Direction, out []float64) {
	if len(out) < ChannelCount(order) {
		panic("audio: EncodeSHInto buffer too short")
	}
	x, y, z := d.X, d.Y, d.Z
	// order 0
	out[0] = 1
	if order >= 1 {
		// ACN 1..3 = (Y, Z, X) with SN3D
		out[1] = y
		out[2] = z
		out[3] = x
	}
	if order >= 2 {
		// SN3D second order
		s3 := math.Sqrt(3) / 2
		out[4] = 2 * s3 * x * y
		out[5] = 2 * s3 * y * z
		out[6] = 0.5 * (3*z*z - 1)
		out[7] = 2 * s3 * x * z
		out[8] = s3 * (x*x - y*y)
	}
	if order >= 3 {
		// SN3D third order
		s58 := math.Sqrt(5.0 / 8.0)
		s158 := math.Sqrt(15.0) / 2
		s38 := math.Sqrt(3.0 / 8.0)
		out[9] = s58 * y * (3*x*x - y*y)
		out[10] = s158 * 2 * x * y * z
		out[11] = s38 * y * (5*z*z - 1)
		out[12] = 0.5 * z * (5*z*z - 3)
		out[13] = s38 * x * (5*z*z - 1)
		out[14] = s158 * z * (x*x - y*y)
		out[15] = s58 * x * (x*x - 3*y*y)
	}
}

// SHRotation is a block-diagonal rotation of SH coefficients, one matrix
// per band, computed with the Ivanic–Ruedenberg recursion.
type SHRotation struct {
	Order int
	Bands []*mathx.Mat // Bands[l] is (2l+1)×(2l+1)
}

// NewSHRotation builds the SH-domain rotation corresponding to the spatial
// rotation q (the rotation that maps source directions d to q.Rotate(d)).
func NewSHRotation(order int, q mathx.Quat) *SHRotation {
	rot := &SHRotation{Order: order, Bands: make([]*mathx.Mat, order+1)}
	rot.Bands[0] = mathx.Eye(1)
	for l := 1; l <= order; l++ {
		rot.Bands[l] = mathx.NewMat(2*l+1, 2*l+1)
	}
	rot.SetQuat(q)
	return rot
}

// SetQuat recomputes the rotation in place for a new spatial rotation q,
// reusing the band matrices. The per-block playback path keeps one
// SHRotation alive and re-targets it with the listener pose each block.
func (rot *SHRotation) SetQuat(q mathx.Quat) {
	if rot.Order == 0 {
		return
	}
	r := q.RotationMatrix()
	// band 1 in ACN ordering (Y, Z, X): R1[a][b] = R[sigma(a)][sigma(b)],
	// sigma = (y, z, x) axis indices.
	sigma := [3]int{1, 2, 0}
	r1 := rot.Bands[1]
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			r1.Set(a, b, r.At(sigma[a], sigma[b]))
		}
	}
	for l := 2; l <= rot.Order; l++ {
		irBandInto(l, r1, rot.Bands[l-1], rot.Bands[l])
	}
}

// irBandInto computes the band-l rotation from the band-1 and band-(l-1)
// rotations (Ivanic & Ruedenberg 1996, with the 1998 erratum), writing
// every entry of the preallocated (2l+1)×(2l+1) out matrix.
func irBandInto(l int, r1, prev, out *mathx.Mat) {
	// helper P_i(l; a, b)
	p := func(i, a, b int) float64 {
		ri := func(m, n int) float64 { return r1.At(m+1, n+1) }
		rp := func(m, n int) float64 { return prev.At(m+l-1, n+l-1) }
		switch {
		case b == l:
			return ri(i, 1)*rp(a, l-1) - ri(i, -1)*rp(a, -l+1)
		case b == -l:
			return ri(i, 1)*rp(a, -l+1) + ri(i, -1)*rp(a, l-1)
		default:
			return ri(i, 0) * rp(a, b)
		}
	}
	delta := func(a, b int) float64 {
		if a == b {
			return 1
		}
		return 0
	}
	for m := -l; m <= l; m++ {
		for n := -l; n <= l; n++ {
			var denom float64
			if abs(n) == l {
				denom = float64(2*l) * float64(2*l-1)
			} else {
				denom = float64(l+n) * float64(l-n)
			}
			u := math.Sqrt(float64(l+m) * float64(l-m) / denom)
			d := delta(m, 0)
			am := abs(m)
			v := 0.5 * math.Sqrt((1+d)*float64(l+am-1)*float64(l+am)/denom) * (1 - 2*d)
			w := -0.5 * math.Sqrt(float64(l-am-1)*float64(l-am)/denom) * (1 - d)

			var uu, vv, ww float64
			if u != 0 {
				uu = p(0, m, n)
			}
			if v != 0 {
				switch {
				case m == 0:
					vv = p(1, 1, n) + p(-1, -1, n)
				case m > 0:
					vv = p(1, m-1, n)*math.Sqrt(1+delta(m, 1)) -
						p(-1, -m+1, n)*(1-delta(m, 1))
				default:
					vv = p(1, m+1, n)*(1-delta(m, -1)) +
						p(-1, -m-1, n)*math.Sqrt(1+delta(m, -1))
				}
			}
			if w != 0 {
				switch {
				case m == 0:
					ww = 0
				case m > 0:
					ww = p(1, m+1, n) + p(-1, -m-1, n)
				default:
					ww = p(1, m-1, n) - p(-1, -m+1, n)
				}
			}
			out.Set(m+l, n+l, u*uu+v*vv+w*ww)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Apply rotates a full ACN coefficient vector in place.
func (r *SHRotation) Apply(coeffs []float64) {
	scratch := recycle.F64.Get(2*r.Order + 1)
	r.applyWith(coeffs, scratch)
	recycle.F64.Put(scratch)
}

// applyWith is Apply with caller-provided per-band scratch of length at
// least 2*Order+1.
func (r *SHRotation) applyWith(coeffs, scratch []float64) {
	if len(coeffs) < ChannelCount(r.Order) {
		panic("audio: coefficient vector too short for rotation order")
	}
	idx := 0
	for l := 0; l <= r.Order; l++ {
		size := 2*l + 1
		band := coeffs[idx : idx+size]
		rotated := scratch[:size]
		r.Bands[l].MulVecNInto(rotated, band)
		copy(band, rotated)
		idx += size
	}
}

// ApplyBlock rotates every sample of a multichannel block (channels ×
// samples) in place.
func (r *SHRotation) ApplyBlock(block [][]float64) { r.ApplyBlockPool(nil, block) }

// rotBlockCtx carries one block rotation for the persistent tile closure.
// Each tile draws its own coefficient and band scratch from the shared
// pool, so concurrent tiles never share mutable state.
type rotBlockCtx struct {
	r     *SHRotation
	block [][]float64
	fn    func(lo, hi int)
}

var rotBlockCtxPool = sync.Pool{New: func() any {
	c := &rotBlockCtx{}
	c.fn = func(lo, hi int) {
		r, block := c.r, c.block
		nCh := ChannelCount(r.Order)
		coeffs := recycle.F64.Get(nCh)
		scratch := recycle.F64.Get(2*r.Order + 1)
		for s := lo; s < hi; s++ {
			for ch := 0; ch < nCh; ch++ {
				coeffs[ch] = block[ch][s]
			}
			r.applyWith(coeffs, scratch)
			for ch := 0; ch < nCh; ch++ {
				block[ch][s] = coeffs[ch]
			}
		}
		recycle.F64.Put(scratch)
		recycle.F64.Put(coeffs)
	}
	return c
}}

// ApplyBlockPool is ApplyBlock with samples tiled over a worker pool. Each
// tile uses its own coefficient scratch vector and every sample column is
// independent, so the rotated block is bitwise identical for every worker
// count.
func (r *SHRotation) ApplyBlockPool(pool *parallel.Pool, block [][]float64) {
	nCh := ChannelCount(r.Order)
	if len(block) < nCh {
		panic("audio: block has too few channels for rotation order")
	}
	n := len(block[0])
	c := rotBlockCtxPool.Get().(*rotBlockCtx)
	c.r, c.block = r, block
	pool.ForTiles("audio_rotate", n, audioTile, c.fn)
	c.r, c.block = nil, nil
	rotBlockCtxPool.Put(c)
}
