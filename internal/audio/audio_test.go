package audio

import (
	"math"
	"math/rand"
	"testing"

	"illixr/internal/mathx"
)

func TestChannelCount(t *testing.T) {
	for order, want := range map[int]int{0: 1, 1: 4, 2: 9, 3: 16} {
		if got := ChannelCount(order); got != want {
			t.Errorf("order %d: %d channels, want %d", order, got, want)
		}
	}
}

func TestEncodeSHOrder0Constant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		d := DirectionFromAzEl(rng.Float64()*2*math.Pi, rng.Float64()*math.Pi-math.Pi/2)
		if c := EncodeSH(2, d); c[0] != 1 {
			t.Fatalf("W channel = %v", c[0])
		}
	}
}

func TestEncodeSHAxes(t *testing.T) {
	// Front (+X): ACN3 (X) should be 1, ACN1 (Y) and ACN2 (Z) zero.
	c := EncodeSH(1, Direction{X: 1})
	if math.Abs(c[3]-1) > 1e-12 || math.Abs(c[1]) > 1e-12 || math.Abs(c[2]) > 1e-12 {
		t.Errorf("front encode = %v", c)
	}
	// Up (+Z): ACN2 = 1.
	c = EncodeSH(2, Direction{Z: 1})
	if math.Abs(c[2]-1) > 1e-12 {
		t.Errorf("up encode = %v", c)
	}
	// ACN6 (= (3z²-1)/2) at up = 1
	if math.Abs(c[6]-1) > 1e-12 {
		t.Errorf("ACN6 at up = %v", c[6])
	}
}

// TestSHRotationMatchesDirectEncoding is the strongest rotation test:
// rotating the coefficients of a plane wave must equal encoding the
// rotated direction.
func TestSHRotationMatchesDirectEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for order := 1; order <= 3; order++ {
		for trial := 0; trial < 40; trial++ {
			q := mathx.Quat{
				W: rng.NormFloat64(), X: rng.NormFloat64(),
				Y: rng.NormFloat64(), Z: rng.NormFloat64(),
			}.Normalized()
			d := DirectionFromAzEl(rng.Float64()*2*math.Pi, rng.Float64()*math.Pi-math.Pi/2)
			coeffs := EncodeSH(order, d)
			rot := NewSHRotation(order, q)
			rot.Apply(coeffs)
			want := EncodeSH(order, q.Rotate(d))
			for i := range coeffs {
				if math.Abs(coeffs[i]-want[i]) > 1e-9 {
					t.Fatalf("order %d trial %d: channel %d = %v, want %v",
						order, trial, i, coeffs[i], want[i])
				}
			}
		}
	}
}

func TestSHRotationIdentity(t *testing.T) {
	rot := NewSHRotation(2, mathx.QuatIdentity())
	coeffs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]float64(nil), coeffs...)
	rot.Apply(coeffs)
	for i := range coeffs {
		if math.Abs(coeffs[i]-orig[i]) > 1e-12 {
			t.Fatalf("identity rotation changed channel %d", i)
		}
	}
}

func TestSHRotationPreservesEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		q := mathx.Quat{
			W: rng.NormFloat64(), X: rng.NormFloat64(),
			Y: rng.NormFloat64(), Z: rng.NormFloat64(),
		}.Normalized()
		coeffs := make([]float64, 9)
		for i := range coeffs {
			coeffs[i] = rng.NormFloat64()
		}
		// per-band energy must be invariant (rotations are orthogonal)
		e1 := coeffs[1]*coeffs[1] + coeffs[2]*coeffs[2] + coeffs[3]*coeffs[3]
		e2 := 0.0
		for i := 4; i < 9; i++ {
			e2 += coeffs[i] * coeffs[i]
		}
		NewSHRotation(2, q).Apply(coeffs)
		f1 := coeffs[1]*coeffs[1] + coeffs[2]*coeffs[2] + coeffs[3]*coeffs[3]
		f2 := 0.0
		for i := 4; i < 9; i++ {
			f2 += coeffs[i] * coeffs[i]
		}
		if math.Abs(e1-f1) > 1e-9 || math.Abs(e2-f2) > 1e-9 {
			t.Fatalf("energy changed: band1 %v->%v band2 %v->%v", e1, f1, e2, f2)
		}
	}
}

func TestNormalizeInt16(t *testing.T) {
	out := make([]float64, 3)
	NormalizeInt16([]int16{-32768, 0, 16384}, out)
	if out[0] != -1 || out[1] != 0 || math.Abs(out[2]-0.5) > 1e-12 {
		t.Errorf("normalize = %v", out)
	}
}

func TestEncoderBlockShape(t *testing.T) {
	src := SineSource("tone", 440, 48000, 0.1, Direction{X: 1})
	e := NewEncoder(2, 1024, []Source{src})
	b := e.EncodeBlock()
	if len(b) != 9 || len(b[0]) != 1024 {
		t.Fatalf("block shape %dx%d", len(b), len(b[0]))
	}
	if RMS(b[0]) == 0 {
		t.Error("silent W channel")
	}
	// Front source: Y channel (ACN1) should be ~0, X (ACN3) ~= W.
	if RMS(b[1]) > 1e-9 {
		t.Errorf("front source leaked into Y: %v", RMS(b[1]))
	}
	if math.Abs(RMS(b[3])-RMS(b[0])) > 1e-9 {
		t.Errorf("X %v != W %v", RMS(b[3]), RMS(b[0]))
	}
}

func TestEncoderSummation(t *testing.T) {
	// Two identical sources double the W channel amplitude.
	s1 := SineSource("a", 440, 48000, 0.1, Direction{X: 1})
	s2 := SineSource("b", 440, 48000, 0.1, Direction{Y: 1})
	single := NewEncoder(1, 256, []Source{s1})
	double := NewEncoder(1, 256, []Source{s1, s2})
	b1 := single.EncodeBlock()
	b2 := double.EncodeBlock()
	if math.Abs(RMS(b2[0])-2*RMS(b1[0])) > 1e-9 {
		t.Errorf("summation: W rms %v vs 2×%v", RMS(b2[0]), RMS(b1[0]))
	}
}

func TestEncoderLoops(t *testing.T) {
	src := SineSource("tone", 440, 48000, 0.01, Direction{X: 1}) // 480 samples
	e := NewEncoder(1, 1024, []Source{src})
	b := e.EncodeBlock() // requires wrap-around
	if RMS(b[0]) == 0 {
		t.Error("looping failed")
	}
}

func TestSpeechLikeSourceNonTrivial(t *testing.T) {
	src := SpeechLikeSource("speech", 48000, 0.5, Direction{X: 1}, 7)
	if len(src.PCM) != 24000 {
		t.Fatalf("pcm length %d", len(src.PCM))
	}
	var energy float64
	for _, v := range src.PCM {
		energy += float64(v) * float64(v)
	}
	if energy == 0 {
		t.Error("silent speech source")
	}
	// deterministic
	src2 := SpeechLikeSource("speech", 48000, 0.5, Direction{X: 1}, 7)
	for i := range src.PCM {
		if src.PCM[i] != src2.PCM[i] {
			t.Fatal("speech source not deterministic")
		}
	}
}

func TestPlaybackProducesStereo(t *testing.T) {
	src := SineSource("tone", 440, 48000, 0.2, DirectionFromAzEl(math.Pi/2, 0)) // left
	e := NewEncoder(2, 1024, []Source{src})
	p := NewPlayback(2, 1024, 48000)
	var l, r []float64
	for i := 0; i < 4; i++ { // let filters fill
		l, r = p.Process(e.EncodeBlock(), mathx.PoseIdentity())
	}
	if RMS(l) == 0 || RMS(r) == 0 {
		t.Fatal("silent output")
	}
	// Source on the left: left ear louder.
	if RMS(l) <= RMS(r) {
		t.Errorf("left %v not louder than right %v for left-side source", RMS(l), RMS(r))
	}
}

func TestPlaybackRotationFollowsHead(t *testing.T) {
	// Source in front; head turned 90° left → source is to the right ear.
	src := SineSource("tone", 500, 48000, 0.2, Direction{X: 1})
	e := NewEncoder(2, 1024, []Source{src})
	p := NewPlayback(2, 1024, 48000)
	pose := mathx.Pose{Rot: mathx.QuatFromAxisAngle(mathx.Vec3{Z: 1}, math.Pi/2)}
	var l, r []float64
	for i := 0; i < 4; i++ {
		l, r = p.Process(e.EncodeBlock(), pose)
	}
	if RMS(r) <= RMS(l) {
		t.Errorf("head turned left: right %v not louder than left %v", RMS(r), RMS(l))
	}
}

func TestPlaybackBlockCount(t *testing.T) {
	src := SineSource("tone", 440, 48000, 0.1, Direction{X: 1})
	e := NewEncoder(2, 512, []Source{src})
	p := NewPlayback(2, 512, 48000)
	for i := 0; i < 3; i++ {
		p.Process(e.EncodeBlock(), mathx.PoseIdentity())
	}
	if p.BlocksProcessed != 3 {
		t.Errorf("blocks = %d", p.BlocksProcessed)
	}
}

func TestSynthHRTFITD(t *testing.T) {
	// A left-side source should reach the left ear earlier: the left FIR's
	// energy centroid must be earlier than the right's.
	l, r := SynthHRTF(Direction{Y: 1}, 48000)
	centroid := func(h []float64) float64 {
		num, den := 0.0, 0.0
		for i, v := range h {
			num += float64(i) * v * v
			den += v * v
		}
		return num / den
	}
	if centroid(l) >= centroid(r) {
		t.Errorf("left centroid %v not earlier than right %v", centroid(l), centroid(r))
	}
}

func TestDecodingMatrixRecoversPlaneWave(t *testing.T) {
	// Decoding a plane wave from direction d should put the most energy on
	// the speaker nearest to d.
	speakers := speakerRig()
	dm := decodingMatrix(2, speakers)
	d := DirectionFromAzEl(0, 0) // front
	coeffs := EncodeSH(2, d)
	gains := dm.MulVecN(coeffs)
	best, bestG := -1, -1e9
	for i, g := range gains {
		if g > bestG {
			best, bestG = i, g
		}
	}
	if speakers[best].Dot(d) < 0.9 {
		t.Errorf("loudest speaker %v not aligned with source %v", speakers[best], d)
	}
}
