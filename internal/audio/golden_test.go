package audio

import (
	"math"
	"testing"

	"illixr/internal/mathx"
	"illixr/internal/parallel"
	"illixr/internal/testutil"
)

func testChain(pool *parallel.Pool) (*Encoder, *Playback) {
	sources := []Source{
		SpeechLikeSource("lecturer", 48000, 0.5, DirectionFromAzEl(0.5, 0), 7),
		SineSource("radio", 440, 48000, 0.5, DirectionFromAzEl(-1.2, 0.2)),
	}
	enc := NewEncoder(2, 512, sources)
	play := NewPlayback(2, 512, 48000)
	enc.SetPool(pool)
	play.SetPool(pool)
	return enc, play
}

func testListener(block int) mathx.Pose {
	return mathx.Pose{
		Rot: mathx.QuatFromAxisAngle(
			mathx.Vec3{X: 0, Y: 0, Z: 1}, 0.1*float64(block+1)),
	}
}

// renderBlocks runs the full encode→playback chain for nBlocks and returns
// the concatenated stereo output.
func renderBlocks(pool *parallel.Pool, nBlocks int) (left, right []float64) {
	enc, play := testChain(pool)
	for b := 0; b < nBlocks; b++ {
		field := enc.EncodeBlock()
		l, r := play.Process(field, testListener(b))
		left = append(left, l...)
		right = append(right, r...)
	}
	return left, right
}

func TestGoldenEncodePlayback(t *testing.T) {
	left, right := renderBlocks(nil, 3)
	var vals []float64
	stride := len(left)/128 + 1
	for i := 0; i < len(left); i += stride {
		vals = append(vals, left[i], right[i])
	}
	sumL, sumR := 0.0, 0.0
	for i := range left {
		sumL += left[i]
		sumR += right[i]
	}
	vals = append(vals, sumL, sumR)
	testutil.CheckGolden(t, "testdata/encode_playback.golden", vals, 0)
}

func TestDeterminismAudioChain(t *testing.T) {
	refL, refR := renderBlocks(nil, 3)
	for _, workers := range []int{2, 4, 7} {
		gotL, gotR := renderBlocks(parallel.New(workers), 3)
		for i := range refL {
			if math.Float64bits(gotL[i]) != math.Float64bits(refL[i]) ||
				math.Float64bits(gotR[i]) != math.Float64bits(refR[i]) {
				t.Fatalf("workers=%d: sample %d differs: (%v,%v) vs (%v,%v)",
					workers, i, gotL[i], gotR[i], refL[i], refR[i])
			}
		}
	}
}
