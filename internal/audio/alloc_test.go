package audio

import (
	"testing"

	"illixr/internal/mathx"
	"illixr/internal/testutil"
)

// TestZeroAllocAudioBlock pins one full audio frame — ambisonic encode of
// two sources plus rotation, psychoacoustic filtering, zoom, and binaural
// decode — at zero steady-state allocations. Encoder and playback own
// their scratch; only the SH rotation pulls (and returns) pool buffers.
func TestZeroAllocAudioBlock(t *testing.T) {
	sources := []Source{
		SpeechLikeSource("lecturer", 48000, 1, DirectionFromAzEl(0.5, 0), 7),
		SineSource("radio", 440, 48000, 1, DirectionFromAzEl(-1.2, 0.2)),
	}
	enc := NewEncoder(2, 256, sources)
	play := NewPlayback(2, 256, 48000)
	pose := mathx.Pose{Rot: mathx.QuatFromAxisAngle(mathx.Vec3{Y: 1}, 0.3)}
	testutil.MustZeroAllocs(t, "EncodeBlock+Process", func() {
		field := enc.EncodeBlock()
		_, _ = play.Process(field, pose)
	})
}
