package audio

import "math"

// Source is one monophonic sound source to be spatialized.
type Source struct {
	Name string
	Dir  Direction
	Gain float64
	// Samples as signed 16-bit integers, the on-disk format of the
	// Freesound clips the paper uses (§III-D): the encoder's first task is
	// the INT16 → FP32 normalization of Table VII.
	PCM []int16
}

// Encoder converts mono sources into an ambisonic soundfield block by
// block, mirroring the three tasks of Table VII: normalization, encoding
// (Y[j][i] = D × X[j]) and HOA soundfield summation.
type Encoder struct {
	Order     int
	BlockSize int
	Sources   []Source
	cursor    int
	// Stats for the performance model
	SamplesEncoded int
}

// NewEncoder builds an encoder at the paper's tuned configuration
// (Table III: 48 Hz block rate → 1024-sample blocks at 48 kHz, order 2).
func NewEncoder(order, blockSize int, sources []Source) *Encoder {
	return &Encoder{Order: order, BlockSize: blockSize, Sources: sources}
}

// NormalizeInt16 converts PCM samples to float in [-1, 1).
func NormalizeInt16(pcm []int16, out []float64) {
	for i, v := range pcm {
		out[i] = float64(v) / 32768.0
	}
}

// EncodeBlock produces the next soundfield block: a [channels][blockSize]
// matrix. Sources shorter than the cursor wrap around (looping playback).
func (e *Encoder) EncodeBlock() [][]float64 {
	nCh := ChannelCount(e.Order)
	field := make([][]float64, nCh)
	for c := range field {
		field[c] = make([]float64, e.BlockSize)
	}
	mono := make([]float64, e.BlockSize)
	pcmBlock := make([]int16, e.BlockSize)
	for _, src := range e.Sources {
		if len(src.PCM) == 0 {
			continue
		}
		// Task 1: normalization (INT16 -> FP64)
		for i := 0; i < e.BlockSize; i++ {
			pcmBlock[i] = src.PCM[(e.cursor+i)%len(src.PCM)]
		}
		NormalizeInt16(pcmBlock, mono)
		// Task 2: encoding — sample-to-soundfield mapping Y[j][i] = D × X[j]
		coeffs := EncodeSH(e.Order, src.Dir.Normalized())
		gain := src.Gain
		if gain == 0 {
			gain = 1
		}
		// Task 3: HOA soundfield summation Y[i][j] += Xk[i][j] ∀k
		for c := 0; c < nCh; c++ {
			g := coeffs[c] * gain
			row := field[c]
			for i := 0; i < e.BlockSize; i++ {
				row[i] += g * mono[i]
			}
		}
		e.SamplesEncoded += e.BlockSize
	}
	e.cursor += e.BlockSize
	return field
}

// Reset rewinds all source cursors.
func (e *Encoder) Reset() { e.cursor = 0 }

// SineSource builds a looping pure-tone source (test signal).
func SineSource(name string, freqHz, sampleRate float64, seconds float64, dir Direction) Source {
	n := int(seconds * sampleRate)
	pcm := make([]int16, n)
	for i := range pcm {
		pcm[i] = int16(20000 * math.Sin(2*math.Pi*freqHz*float64(i)/sampleRate))
	}
	return Source{Name: name, Dir: dir, Gain: 1, PCM: pcm}
}

// SpeechLikeSource synthesizes a speech-like signal (amplitude-modulated
// harmonics with formant-ish band emphasis) — the stand-in for the
// "Science Teacher Lecturing" Freesound clip (§III-D).
func SpeechLikeSource(name string, sampleRate float64, seconds float64, dir Direction, seed int64) Source {
	n := int(seconds * sampleRate)
	pcm := make([]int16, n)
	// deterministic pseudo-random phases from the seed
	rngState := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		return float64(rngState>>11) / float64(1<<53)
	}
	f0 := 120 + 40*next() // fundamental
	phases := make([]float64, 8)
	for i := range phases {
		phases[i] = 2 * math.Pi * next()
	}
	for i := 0; i < n; i++ {
		t := float64(i) / sampleRate
		// syllable-rate envelope ~4 Hz
		env := 0.5 + 0.5*math.Sin(2*math.Pi*4*t+1.3)
		env *= 0.6 + 0.4*math.Sin(2*math.Pi*0.7*t)
		s := 0.0
		for h := 1; h <= 8; h++ {
			amp := 1.0 / float64(h)
			if h == 3 || h == 4 { // crude formant emphasis
				amp *= 2
			}
			s += amp * math.Sin(2*math.Pi*f0*float64(h)*t+phases[h-1])
		}
		pcm[i] = int16(6000 * env * s / 4)
	}
	return Source{Name: name, Dir: dir, Gain: 1, PCM: pcm}
}
