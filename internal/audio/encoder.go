package audio

import (
	"math"

	"illixr/internal/parallel"
)

// audioTile is the fixed sample-tile size for the parallel audio stages.
const audioTile = 256

// Source is one monophonic sound source to be spatialized.
type Source struct {
	Name string
	Dir  Direction
	Gain float64
	// Samples as signed 16-bit integers, the on-disk format of the
	// Freesound clips the paper uses (§III-D): the encoder's first task is
	// the INT16 → FP32 normalization of Table VII.
	PCM []int16
}

// Encoder converts mono sources into an ambisonic soundfield block by
// block, mirroring the three tasks of Table VII: normalization, encoding
// (Y[j][i] = D × X[j]) and HOA soundfield summation.
type Encoder struct {
	Order     int
	BlockSize int
	Sources   []Source
	cursor    int
	pool      *parallel.Pool
	// Stats for the performance model
	SamplesEncoded int

	// Persistent per-block state: the field rows, per-source mono and SH
	// coefficient buffers, and the two tile kernels are allocated once and
	// reused so steady-state EncodeBlock calls allocate nothing
	// (DESIGN.md §10). The returned block is encoder-owned and valid until
	// the next EncodeBlock call.
	field  [][]float64
	monos  [][]float64
	coeffs [][]float64
	active []encodedSource

	curMono   []float64 // per-source args for normFn
	curPCM    []int16
	curCursor int
	normFn    func(lo, hi int)
	encodeFn  func(lo, hi int)
}

// encodedSource is one active source's prepared block inputs.
type encodedSource struct {
	mono   []float64
	coeffs []float64
	gain   float64
}

// SetPool sets the worker pool for the encode stages (nil = serial). The
// soundfield is bitwise identical for every worker count: normalization
// writes disjoint sample tiles, and each channel accumulates its sources
// in declaration order exactly as the serial path does (DESIGN.md §8).
func (e *Encoder) SetPool(p *parallel.Pool) { e.pool = p }

// NewEncoder builds an encoder at the paper's tuned configuration
// (Table III: 48 Hz block rate → 1024-sample blocks at 48 kHz, order 2).
func NewEncoder(order, blockSize int, sources []Source) *Encoder {
	return &Encoder{Order: order, BlockSize: blockSize, Sources: sources}
}

// NormalizeInt16 converts PCM samples to float in [-1, 1).
func NormalizeInt16(pcm []int16, out []float64) {
	for i, v := range pcm {
		out[i] = float64(v) / 32768.0
	}
}

// ensureBuffers builds the encoder's persistent block state on first use.
func (e *Encoder) ensureBuffers() {
	if e.field != nil && len(e.monos) == len(e.Sources) {
		return
	}
	nCh := ChannelCount(e.Order)
	e.field = make([][]float64, nCh)
	for c := range e.field {
		e.field[c] = make([]float64, e.BlockSize)
	}
	e.monos = make([][]float64, len(e.Sources))
	e.coeffs = make([][]float64, len(e.Sources))
	for i := range e.Sources {
		e.monos[i] = make([]float64, e.BlockSize)
		e.coeffs[i] = make([]float64, nCh)
	}
	e.active = make([]encodedSource, 0, len(e.Sources))
	e.normFn = func(lo, hi int) {
		mono, pcm, cur := e.curMono, e.curPCM, e.curCursor
		for i := lo; i < hi; i++ {
			mono[i] = float64(pcm[(cur+i)%len(pcm)]) / 32768.0
		}
	}
	e.encodeFn = func(lo, hi int) {
		for c := lo; c < hi; c++ {
			row := e.field[c]
			for i := range row {
				row[i] = 0
			}
			for _, src := range e.active {
				g := src.coeffs[c] * src.gain
				for i := 0; i < e.BlockSize; i++ {
					row[i] += g * src.mono[i]
				}
			}
		}
	}
}

// EncodeBlock produces the next soundfield block: a [channels][blockSize]
// matrix. Sources shorter than the cursor wrap around (looping playback).
// The returned block is encoder-owned scratch: callers may mutate it, but
// it is overwritten by the next EncodeBlock call.
func (e *Encoder) EncodeBlock() [][]float64 {
	e.ensureBuffers()
	nCh := ChannelCount(e.Order)
	// Task 1 + 2 per source: normalization (INT16 -> FP64) over disjoint
	// sample tiles, and the SH encoding coefficients Y[j][i] = D × X[j].
	e.active = e.active[:0]
	for si, src := range e.Sources {
		if len(src.PCM) == 0 {
			continue
		}
		e.curMono, e.curPCM, e.curCursor = e.monos[si], src.PCM, e.cursor
		e.pool.ForTiles("audio_normalize", e.BlockSize, audioTile, e.normFn)
		gain := src.Gain
		if gain == 0 {
			gain = 1
		}
		EncodeSHInto(e.Order, src.Dir.Normalized(), e.coeffs[si])
		e.active = append(e.active, encodedSource{
			mono:   e.monos[si],
			coeffs: e.coeffs[si],
			gain:   gain,
		})
		e.SamplesEncoded += e.BlockSize
	}
	e.curMono, e.curPCM = nil, nil
	// Task 3: HOA soundfield summation Y[i][j] += Xk[i][j] ∀k. Channels are
	// disjoint rows; each row zeroes itself then sums its sources in
	// declaration order, the same order as the serial loop, so the field is
	// bitwise identical.
	e.pool.ForTiles("audio_encode", nCh, 1, e.encodeFn)
	e.cursor += e.BlockSize
	return e.field
}

// Reset rewinds all source cursors.
func (e *Encoder) Reset() { e.cursor = 0 }

// SineSource builds a looping pure-tone source (test signal).
func SineSource(name string, freqHz, sampleRate float64, seconds float64, dir Direction) Source {
	n := int(seconds * sampleRate)
	pcm := make([]int16, n)
	for i := range pcm {
		pcm[i] = int16(20000 * math.Sin(2*math.Pi*freqHz*float64(i)/sampleRate))
	}
	return Source{Name: name, Dir: dir, Gain: 1, PCM: pcm}
}

// SpeechLikeSource synthesizes a speech-like signal (amplitude-modulated
// harmonics with formant-ish band emphasis) — the stand-in for the
// "Science Teacher Lecturing" Freesound clip (§III-D).
func SpeechLikeSource(name string, sampleRate float64, seconds float64, dir Direction, seed int64) Source {
	n := int(seconds * sampleRate)
	pcm := make([]int16, n)
	// deterministic pseudo-random phases from the seed
	rngState := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		return float64(rngState>>11) / float64(1<<53)
	}
	f0 := 120 + 40*next() // fundamental
	phases := make([]float64, 8)
	for i := range phases {
		phases[i] = 2 * math.Pi * next()
	}
	for i := 0; i < n; i++ {
		t := float64(i) / sampleRate
		// syllable-rate envelope ~4 Hz
		env := 0.5 + 0.5*math.Sin(2*math.Pi*4*t+1.3)
		env *= 0.6 + 0.4*math.Sin(2*math.Pi*0.7*t)
		s := 0.0
		for h := 1; h <= 8; h++ {
			amp := 1.0 / float64(h)
			if h == 3 || h == 4 { // crude formant emphasis
				amp *= 2
			}
			s += amp * math.Sin(2*math.Pi*f0*float64(h)*t+phases[h-1])
		}
		pcm[i] = int16(6000 * env * s / 4)
	}
	return Source{Name: name, Dir: dir, Gain: 1, PCM: pcm}
}
