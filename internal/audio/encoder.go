package audio

import (
	"math"

	"illixr/internal/parallel"
)

// audioTile is the fixed sample-tile size for the parallel audio stages.
const audioTile = 256

// Source is one monophonic sound source to be spatialized.
type Source struct {
	Name string
	Dir  Direction
	Gain float64
	// Samples as signed 16-bit integers, the on-disk format of the
	// Freesound clips the paper uses (§III-D): the encoder's first task is
	// the INT16 → FP32 normalization of Table VII.
	PCM []int16
}

// Encoder converts mono sources into an ambisonic soundfield block by
// block, mirroring the three tasks of Table VII: normalization, encoding
// (Y[j][i] = D × X[j]) and HOA soundfield summation.
type Encoder struct {
	Order     int
	BlockSize int
	Sources   []Source
	cursor    int
	pool      *parallel.Pool
	// Stats for the performance model
	SamplesEncoded int
}

// SetPool sets the worker pool for the encode stages (nil = serial). The
// soundfield is bitwise identical for every worker count: normalization
// writes disjoint sample tiles, and each channel accumulates its sources
// in declaration order exactly as the serial path does (DESIGN.md §8).
func (e *Encoder) SetPool(p *parallel.Pool) { e.pool = p }

// NewEncoder builds an encoder at the paper's tuned configuration
// (Table III: 48 Hz block rate → 1024-sample blocks at 48 kHz, order 2).
func NewEncoder(order, blockSize int, sources []Source) *Encoder {
	return &Encoder{Order: order, BlockSize: blockSize, Sources: sources}
}

// NormalizeInt16 converts PCM samples to float in [-1, 1).
func NormalizeInt16(pcm []int16, out []float64) {
	for i, v := range pcm {
		out[i] = float64(v) / 32768.0
	}
}

// EncodeBlock produces the next soundfield block: a [channels][blockSize]
// matrix. Sources shorter than the cursor wrap around (looping playback).
func (e *Encoder) EncodeBlock() [][]float64 {
	nCh := ChannelCount(e.Order)
	field := make([][]float64, nCh)
	for c := range field {
		field[c] = make([]float64, e.BlockSize)
	}
	// Task 1 + 2 per source: normalization (INT16 -> FP64) over disjoint
	// sample tiles, and the SH encoding coefficients Y[j][i] = D × X[j].
	type encoded struct {
		mono   []float64
		coeffs []float64
		gain   float64
	}
	var active []encoded
	for _, src := range e.Sources {
		if len(src.PCM) == 0 {
			continue
		}
		mono := make([]float64, e.BlockSize)
		pcm := src.PCM
		cur := e.cursor
		e.pool.ForTiles("audio_normalize", e.BlockSize, audioTile, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				mono[i] = float64(pcm[(cur+i)%len(pcm)]) / 32768.0
			}
		})
		gain := src.Gain
		if gain == 0 {
			gain = 1
		}
		active = append(active, encoded{
			mono:   mono,
			coeffs: EncodeSH(e.Order, src.Dir.Normalized()),
			gain:   gain,
		})
		e.SamplesEncoded += e.BlockSize
	}
	// Task 3: HOA soundfield summation Y[i][j] += Xk[i][j] ∀k. Channels are
	// disjoint rows; each row sums its sources in declaration order, the
	// same order as the serial loop, so the field is bitwise identical.
	e.pool.ForTiles("audio_encode", nCh, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			row := field[c]
			for _, src := range active {
				g := src.coeffs[c] * src.gain
				for i := 0; i < e.BlockSize; i++ {
					row[i] += g * src.mono[i]
				}
			}
		}
	})
	e.cursor += e.BlockSize
	return field
}

// Reset rewinds all source cursors.
func (e *Encoder) Reset() { e.cursor = 0 }

// SineSource builds a looping pure-tone source (test signal).
func SineSource(name string, freqHz, sampleRate float64, seconds float64, dir Direction) Source {
	n := int(seconds * sampleRate)
	pcm := make([]int16, n)
	for i := range pcm {
		pcm[i] = int16(20000 * math.Sin(2*math.Pi*freqHz*float64(i)/sampleRate))
	}
	return Source{Name: name, Dir: dir, Gain: 1, PCM: pcm}
}

// SpeechLikeSource synthesizes a speech-like signal (amplitude-modulated
// harmonics with formant-ish band emphasis) — the stand-in for the
// "Science Teacher Lecturing" Freesound clip (§III-D).
func SpeechLikeSource(name string, sampleRate float64, seconds float64, dir Direction, seed int64) Source {
	n := int(seconds * sampleRate)
	pcm := make([]int16, n)
	// deterministic pseudo-random phases from the seed
	rngState := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		return float64(rngState>>11) / float64(1<<53)
	}
	f0 := 120 + 40*next() // fundamental
	phases := make([]float64, 8)
	for i := range phases {
		phases[i] = 2 * math.Pi * next()
	}
	for i := 0; i < n; i++ {
		t := float64(i) / sampleRate
		// syllable-rate envelope ~4 Hz
		env := 0.5 + 0.5*math.Sin(2*math.Pi*4*t+1.3)
		env *= 0.6 + 0.4*math.Sin(2*math.Pi*0.7*t)
		s := 0.0
		for h := 1; h <= 8; h++ {
			amp := 1.0 / float64(h)
			if h == 3 || h == 4 { // crude formant emphasis
				amp *= 2
			}
			s += amp * math.Sin(2*math.Pi*f0*float64(h)*t+phases[h-1])
		}
		pcm[i] = int16(6000 * env * s / 4)
	}
	return Source{Name: name, Dir: dir, Gain: 1, PCM: pcm}
}
