package power

import (
	"math"
	"testing"
	"testing/quick"

	"illixr/internal/perfmodel"
)

func TestBreakdownTotalAndShares(t *testing.T) {
	b := Breakdown{CPU: 10, GPU: 20, DDR: 5, SoC: 10, Sys: 5}
	if b.Total() != 50 {
		t.Errorf("total %v", b.Total())
	}
	cpu, gpu, ddr, soc, sys := b.Shares()
	if math.Abs(cpu+gpu+ddr+soc+sys-1) > 1e-12 {
		t.Error("shares do not sum to 1")
	}
	if gpu != 0.4 {
		t.Errorf("gpu share %v", gpu)
	}
	zero := Breakdown{}
	if c, _, _, _, _ := zero.Shares(); c != 0 {
		t.Error("zero breakdown shares")
	}
}

func TestEstimateMonotoneInUtilization(t *testing.T) {
	for _, p := range perfmodel.Platforms {
		idle := Estimate(p, Utilization{})
		busy := Estimate(p, Utilization{CPU: 1, GPU: 1})
		if busy.Total() <= idle.Total() {
			t.Errorf("%s: busy %v <= idle %v", p.Name, busy.Total(), idle.Total())
		}
		if idle.SoC <= 0 || idle.Sys <= 0 {
			t.Errorf("%s: zero static rails", p.Name)
		}
	}
}

func TestEstimateClampsUtilization(t *testing.T) {
	p := perfmodel.Desktop
	over := Estimate(p, Utilization{CPU: 5, GPU: 5})
	max := Estimate(p, Utilization{CPU: 1, GPU: 1})
	if over.Total() != max.Total() {
		t.Error("utilization not clamped")
	}
	under := Estimate(p, Utilization{CPU: -1, GPU: -1})
	idle := Estimate(p, Utilization{})
	if under.Total() != idle.Total() {
		t.Error("negative utilization not clamped")
	}
}

func TestPlatformPowerOrdering(t *testing.T) {
	u := Utilization{CPU: 0.3, GPU: 0.7}
	d := Estimate(perfmodel.Desktop, u).Total()
	hp := Estimate(perfmodel.JetsonHP, u).Total()
	lp := Estimate(perfmodel.JetsonLP, u).Total()
	if !(d > 10*hp && hp > lp) {
		t.Errorf("ordering: desktop %v, hp %v, lp %v", d, hp, lp)
	}
}

func TestJetsonLPSoCSysDominates(t *testing.T) {
	// §IV-A2: SoC and Sys consume more than 50% on Jetson-LP.
	b := Estimate(perfmodel.JetsonLP, Utilization{CPU: 0.25, GPU: 0.9})
	_, _, _, soc, sys := b.Shares()
	if soc+sys < 0.5 {
		t.Errorf("SoC+Sys = %.2f", soc+sys)
	}
}

func TestDesktopGPUDominates(t *testing.T) {
	b := Estimate(perfmodel.Desktop, Utilization{CPU: 0.3, GPU: 0.6})
	if b.GPU <= b.CPU {
		t.Error("desktop GPU power should dominate")
	}
}

func TestUnknownPlatform(t *testing.T) {
	b := Estimate(perfmodel.Platform{Name: "nope"}, Utilization{CPU: 1})
	if b.Total() != 0 {
		t.Error("unknown platform should be zero")
	}
}

func TestGapVsIdeal(t *testing.T) {
	b := Breakdown{CPU: 150}
	if g := GapVsIdeal(b, 1.5); math.Abs(g-100) > 1e-12 {
		t.Errorf("gap %v", g)
	}
	if GapVsIdeal(b, 0) != 0 {
		t.Error("zero ideal should return 0")
	}
}

func TestEstimateNonNegativeProperty(t *testing.T) {
	f := func(cpu, gpu float64) bool {
		if math.IsNaN(cpu) || math.IsNaN(gpu) || math.IsInf(cpu, 0) || math.IsInf(gpu, 0) {
			return true
		}
		for _, p := range perfmodel.Platforms {
			b := Estimate(p, Utilization{CPU: cpu, GPU: gpu})
			if b.CPU < 0 || b.GPU < 0 || b.DDR < 0 || b.SoC < 0 || b.Sys < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
