// Package power implements the rail-level power model behind Fig 6: given
// per-resource utilizations from the scheduler, it estimates CPU, GPU,
// DDR, SoC and Sys power for each platform. Rail constants are calibrated
// to the paper's observations: the desktop draws hundreds of watts with
// the GPU dominating; the Jetsons draw ~7–17 W with *all* rails
// substantial; and SoC+Sys exceeds 50 % of total power on Jetson-LP
// (§IV-A2).
package power

import "illixr/internal/perfmodel"

// Utilization is the busy fraction of each shared resource over a run.
type Utilization struct {
	CPU float64 // mean busy fraction across cores, in [0,1]
	GPU float64 // busy fraction of the GPU, in [0,1]
}

// Breakdown is the per-rail power in watts (the five rails of §III-E).
type Breakdown struct {
	CPU float64
	GPU float64
	DDR float64 // DRAM
	SoC float64 // on-chip microcontrollers, excludes CPU and GPU
	Sys float64 // display, storage, I/O, sensors
}

// Total sums the rails.
func (b Breakdown) Total() float64 { return b.CPU + b.GPU + b.DDR + b.SoC + b.Sys }

// Shares returns each rail as a fraction of the total.
func (b Breakdown) Shares() (cpu, gpu, ddr, soc, sys float64) {
	t := b.Total()
	if t == 0 {
		return 0, 0, 0, 0, 0
	}
	return b.CPU / t, b.GPU / t, b.DDR / t, b.SoC / t, b.Sys / t
}

// rail is a static + dynamic linear power model.
type rail struct {
	static  float64
	dynamic float64
}

func (r rail) at(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return r.static + r.dynamic*u
}

type platformRails struct {
	cpu, gpu, ddr rail
	soc, sys      float64
}

var railTable = map[string]platformRails{
	perfmodel.Desktop.Name: {
		cpu: rail{static: 14, dynamic: 58},
		gpu: rail{static: 38, dynamic: 185},
		ddr: rail{static: 4, dynamic: 9},
		soc: 12, // chipset, VRM losses
		sys: 28, // display, storage, I/O
	},
	perfmodel.JetsonHP.Name: {
		cpu: rail{static: 0.7, dynamic: 3.4},
		gpu: rail{static: 0.5, dynamic: 4.6},
		ddr: rail{static: 0.4, dynamic: 1.9},
		soc: 2.3,
		sys: 3.3, // display + sensor I/O
	},
	perfmodel.JetsonLP.Name: {
		cpu: rail{static: 0.35, dynamic: 1.25},
		gpu: rail{static: 0.25, dynamic: 1.7},
		ddr: rail{static: 0.25, dynamic: 0.95},
		soc: 1.9,
		sys: 2.7,
	},
}

// Estimate computes the power breakdown of a platform at the given
// utilization. Unknown platforms return the zero Breakdown.
func Estimate(p perfmodel.Platform, u Utilization) Breakdown {
	r, ok := railTable[p.Name]
	if !ok {
		return Breakdown{}
	}
	// memory utilization follows compute activity
	memU := 0.45*u.CPU + 0.55*u.GPU
	return Breakdown{
		CPU: r.cpu.at(u.CPU),
		GPU: r.gpu.at(u.GPU),
		DDR: r.ddr.at(memU),
		SoC: r.soc,
		Sys: r.sys,
	}
}

// GapVsIdeal returns total power divided by the Table I ideal (VR: 1.5 W).
func GapVsIdeal(b Breakdown, idealWatts float64) float64 {
	if idealWatts <= 0 {
		return 0
	}
	return b.Total() / idealWatts
}
